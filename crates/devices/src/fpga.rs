//! SRAM-FPGA configuration-memory model.
//!
//! The paper's key observation about FPGAs: configuration-memory upsets
//! are **persistent** — a flipped bit rewires the implemented circuit
//! until a new bitstream is loaded — so errors *accumulate* between
//! reconfigurations, and the experimental procedure reprograms the device
//! after every observed output error to avoid logging a stream of
//! corrupted outputs. DUEs were never observed: with no OS or control
//! flow, it takes a large accumulation of upsets to kill the circuit
//! outright.

use tn_rng::Rng;
use tn_physics::units::{Flux, Seconds};

/// Floating-point precision of a design mapped onto the fabric.
///
/// The paper tested MNIST in single and double precision: "the double
/// precision version takes about twice as many resources … the thermal
/// neutrons cross section for the double version is particularly higher,
/// being almost four times larger" than the single-precision one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPrecision {
    /// 32-bit floating point.
    Single,
    /// 64-bit floating point — ~2× fabric, ~4× thermal cross section.
    Double,
}

impl std::fmt::Display for DesignPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DesignPrecision::Single => "single",
            DesignPrecision::Double => "double",
        })
    }
}

/// The configuration memory of an SRAM FPGA carrying a design.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigMemory {
    total_bits: u64,
    /// Fraction of configuration bits that are *essential* to the loaded
    /// design (flipping one changes the implemented circuit).
    essential_fraction: f64,
    /// Upset cross section per configuration bit in the current beam
    /// (cm²) — thermal or fast, chosen by the caller.
    sigma_per_bit: f64,
    flipped_essential: u64,
    flipped_total: u64,
}

impl ConfigMemory {
    /// Creates a configuration memory.
    ///
    /// # Panics
    ///
    /// Panics if `essential_fraction` is outside `[0, 1]` or
    /// `sigma_per_bit` is negative.
    pub fn new(total_bits: u64, essential_fraction: f64, sigma_per_bit: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&essential_fraction),
            "essential fraction must be in [0,1]"
        );
        assert!(sigma_per_bit >= 0.0, "cross section must be non-negative");
        Self {
            total_bits,
            essential_fraction,
            sigma_per_bit,
            flipped_essential: 0,
            flipped_total: 0,
        }
    }

    /// A Zynq-7000-class device (≈ 32 Mbit of configuration) carrying a
    /// design using a tenth of the fabric, with the given per-bit upset
    /// cross section.
    pub fn zynq7000(sigma_per_bit: f64) -> Self {
        Self::new(32_000_000, 0.10, sigma_per_bit)
    }

    /// The Zynq carrying the MNIST design at the given precision under a
    /// *thermal* beam.
    ///
    /// Relative to single precision, the double version occupies twice
    /// the fabric (doubling the essential-bit population, hence the fast
    /// cross section) and its wider arithmetic concentrates twice the
    /// boron-adjacent configuration per essential cell — the two factors
    /// compound to the ≈ 4× thermal cross section the paper measured.
    pub fn zynq7000_mnist_thermal(precision: DesignPrecision) -> Self {
        let base_sigma = 2.0e-16;
        match precision {
            DesignPrecision::Single => Self::new(32_000_000, 0.10, base_sigma),
            DesignPrecision::Double => Self::new(32_000_000, 0.20, 2.0 * base_sigma),
        }
    }

    /// The same two designs under the *fast* beam: the fast response
    /// scales with occupied area only (no capture physics), so double
    /// precision costs 2×, not 4×.
    pub fn zynq7000_mnist_fast(precision: DesignPrecision) -> Self {
        let base_sigma = 5.0e-16;
        match precision {
            DesignPrecision::Single => Self::new(32_000_000, 0.10, base_sigma),
            DesignPrecision::Double => Self::new(32_000_000, 0.20, base_sigma),
        }
    }

    /// Fraction of configuration bits essential to the loaded design.
    pub fn essential_fraction(&self) -> f64 {
        self.essential_fraction
    }

    /// Total configuration bits.
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Currently corrupted essential bits.
    pub fn flipped_essential(&self) -> u64 {
        self.flipped_essential
    }

    /// All currently corrupted bits (essential or not).
    pub fn flipped_total(&self) -> u64 {
        self.flipped_total
    }

    /// Whether the implemented circuit currently differs from the design.
    pub fn is_corrupted(&self) -> bool {
        self.flipped_essential > 0
    }

    /// Expected whole-memory upset rate (events/s) in the beam.
    pub fn upset_rate(&self, flux: Flux) -> f64 {
        self.sigma_per_bit * self.total_bits as f64 * flux.value()
    }

    /// Exposes the memory for `dt` at `flux`, accumulating persistent
    /// upsets. Returns the number of *new essential* flips.
    pub fn expose(&mut self, flux: Flux, dt: Seconds, rng: &mut Rng) -> u64 {
        let mean = self.upset_rate(flux) * dt.value();
        let n = crate::sampling::poisson(rng, mean);
        self.flipped_total += n;
        let mut essential = 0;
        for _ in 0..n {
            if rng.gen_f64() < self.essential_fraction {
                essential += 1;
            }
        }
        self.flipped_essential += essential;
        essential
    }

    /// Reloads the bitstream, clearing all accumulated corruption — the
    /// paper's per-error reprogramming step.
    pub fn reprogram(&mut self) {
        self.flipped_essential = 0;
        self.flipped_total = 0;
    }
}

/// Outcome of a scrubbed FPGA beam run: how many output errors were seen
/// and how much fluence was collected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaRun {
    /// Output errors observed (each followed by a reprogram).
    pub output_errors: u64,
    /// Accumulated fluence (n/cm²).
    pub fluence: f64,
    /// Beam seconds simulated.
    pub seconds: f64,
}

impl FpgaRun {
    /// Measured per-device output-error cross section.
    pub fn cross_section(&self) -> f64 {
        if self.fluence == 0.0 {
            0.0
        } else {
            self.output_errors as f64 / self.fluence
        }
    }
}

/// Runs the paper's FPGA procedure: expose, check output every
/// `check_interval`, reprogram when an output error is observed.
///
/// An output error is observed when at least one essential bit is
/// corrupted at check time (the corrupted circuit computes wrong values).
pub fn run_scrubbed(
    mut memory: ConfigMemory,
    flux: Flux,
    duration: Seconds,
    check_interval: Seconds,
    seed: u64,
) -> FpgaRun {
    assert!(
        check_interval.value() > 0.0 && duration.value() >= check_interval.value(),
        "check interval must be positive and fit in the run"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let checks = (duration.value() / check_interval.value()).floor() as u64;
    let mut output_errors = 0;
    for _ in 0..checks {
        memory.expose(flux, check_interval, &mut rng);
        if memory.is_corrupted() {
            output_errors += 1;
            memory.reprogram();
        }
    }
    FpgaRun {
        output_errors,
        fluence: flux.value() * duration.value(),
        seconds: duration.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsets_accumulate_until_reprogram() {
        let mut mem = ConfigMemory::zynq7000(1e-15);
        let mut rng = Rng::seed_from_u64(1);
        let mut essential = 0;
        for _ in 0..50 {
            essential += mem.expose(Flux(2.72e6), Seconds(10.0), &mut rng);
        }
        assert!(mem.flipped_total() > 0);
        assert_eq!(mem.flipped_essential(), essential);
        mem.reprogram();
        assert!(!mem.is_corrupted());
        assert_eq!(mem.flipped_total(), 0);
    }

    #[test]
    fn essential_flips_track_fraction() {
        let mut mem = ConfigMemory::new(1_000_000, 0.25, 1e-11);
        let mut rng = Rng::seed_from_u64(2);
        mem.expose(Flux(1e6), Seconds(100.0), &mut rng);
        let frac = mem.flipped_essential() as f64 / mem.flipped_total() as f64;
        assert!((frac - 0.25).abs() < 0.05, "essential fraction {frac}");
    }

    #[test]
    fn scrubbed_run_counts_errors_proportional_to_fluence() {
        let short = run_scrubbed(
            ConfigMemory::zynq7000(1e-15),
            Flux(2.72e6),
            Seconds(2_000.0),
            Seconds(5.0),
            3,
        );
        let long = run_scrubbed(
            ConfigMemory::zynq7000(1e-15),
            Flux(2.72e6),
            Seconds(20_000.0),
            Seconds(5.0),
            3,
        );
        assert!(long.output_errors > 5 * short.output_errors.max(1) / 2);
        // Cross sections agree within counting noise.
        let (a, b) = (short.cross_section(), long.cross_section());
        assert!((a - b).abs() / b < 0.5, "a {a:e} b {b:e}");
    }

    #[test]
    fn cross_section_zero_without_fluence() {
        let run = FpgaRun {
            output_errors: 0,
            fluence: 0.0,
            seconds: 0.0,
        };
        assert_eq!(run.cross_section(), 0.0);
    }

    #[test]
    #[should_panic(expected = "essential fraction")]
    fn invalid_essential_fraction_rejected() {
        let _ = ConfigMemory::new(100, 1.5, 1e-15);
    }

    #[test]
    fn double_precision_quadruples_thermal_output_error_rate() {
        let flux = Flux(2.72e6);
        let run = |precision| {
            run_scrubbed(
                ConfigMemory::zynq7000_mnist_thermal(precision),
                flux,
                Seconds(40_000.0),
                Seconds(2.0),
                9,
            )
        };
        let single = run(DesignPrecision::Single);
        let double = run(DesignPrecision::Double);
        let ratio = double.cross_section() / single.cross_section();
        assert!((2.5..6.0).contains(&ratio), "thermal ratio = {ratio}");
    }

    #[test]
    fn double_precision_doubles_fast_output_error_rate() {
        let flux = Flux(5.4e6);
        let run = |precision| {
            run_scrubbed(
                ConfigMemory::zynq7000_mnist_fast(precision),
                flux,
                Seconds(20_000.0),
                Seconds(2.0),
                10,
            )
        };
        let single = run(DesignPrecision::Single);
        let double = run(DesignPrecision::Double);
        let ratio = double.cross_section() / single.cross_section();
        assert!((1.4..3.0).contains(&ratio), "fast ratio = {ratio}");
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(
            ConfigMemory::zynq7000_mnist_thermal(DesignPrecision::Double).essential_fraction(),
            0.20
        );
        assert_eq!(DesignPrecision::Single.to_string(), "single");
        assert_eq!(DesignPrecision::Double.to_string(), "double");
    }
}
