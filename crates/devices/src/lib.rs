//! # tn-devices — radiation response models of computing devices
//!
//! Sensitive-volume models for the devices the paper irradiated:
//! Intel Xeon Phi (22 nm), NVIDIA K20 (28 nm planar CMOS), NVIDIA TitanX
//! (16 nm FinFET), NVIDIA TitanV (12 nm FinFET), the AMD APU (28 nm, CPU /
//! GPU / CPU+GPU configurations), a Xilinx Zynq-7000 FPGA, and DDR3/DDR4
//! DRAM modules.
//!
//! Each device's **thermal** sensitivity *emerges* from its modelled ¹⁰B
//! areal density through the 1/v capture law and an alpha-upset
//! probability, rather than being tabulated; the **fast** sensitivity is a
//! per-bit interaction constant. DESIGN.md documents how the free
//! parameters were fitted to the cross-section-ratio bands the paper
//! reports (its absolute cross sections are business-sensitive and were
//! never published).
//!
//! ## Example
//!
//! ```
//! use tn_devices::catalog;
//! use tn_physics::units::Energy;
//!
//! let k20 = catalog::nvidia_k20();
//! let phi = catalog::xeon_phi();
//! // Xeon Phi uses little/depleted boron: its thermal response is far
//! // weaker relative to its fast response than the K20's.
//! let k20_ratio = k20.response().fast_sdc_sensitivity().value()
//!     / k20.response().thermal_sdc_sensitivity(Energy(0.0253)).value();
//! let phi_ratio = phi.response().fast_sdc_sensitivity().value()
//!     / phi.response().thermal_sdc_sensitivity(Energy(0.0253)).value();
//! assert!(phi_ratio > 2.0 * k20_ratio);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod catalog;
pub mod ddr;
pub mod sampling;
pub mod ecc;
pub mod fpga;
pub mod response;

pub use catalog::{all_compute_devices, fit_b10_population, Device, DeviceKind, Technology, TransistorKind};
pub use ddr::{DataPattern, DdrErrorKind, DdrGeneration, DdrModule, FlipDirection};
pub use fpga::{ConfigMemory, DesignPrecision};
pub use response::{DeviceResponse, ErrorClass, SensitiveRegion};
