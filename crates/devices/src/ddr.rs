//! DDR3/DDR4 DRAM models, the read/write *correct loop* tester and the
//! error classifier — the memory half of the paper.
//!
//! The paper irradiated a 4 GB DDR3-1866 and an 8 GB DDR4-2133 module
//! (no ECC, single-rank ×8) with thermal neutrons while running a
//! continuous correct loop: banks set to 0xFF or 0x00 and re-read, error
//! counters bumped and banks rewritten on mismatch. Its findings, all
//! encoded here:
//!
//! * DDR4's thermal cross section per Gbit is ≈ 10× *lower* than DDR3's;
//! * ≥ 95 % of flips go one way — 1→0 on DDR3, 0→1 on DDR4 (complementary
//!   cell logic);
//! * error-category mix shifts: permanent errors are < 30 % of DDR3 errors
//!   but > 50 % on DDR4; both show occasional SEFIs;
//! * all transient/intermittent errors were single-bit (SECDED would
//!   catch them); SEFIs corrupt many bits;
//! * under the ChipIR *fast* beam both modules accumulated permanent
//!   faults within minutes, aborting data collection.
//!
//! The module splits generation (ground truth) from classification
//! (inference over the read log) so tests can verify the analysis recovers
//! the truth — the same epistemic position as the experimenters.

use crate::sampling::poisson;
use tn_rng::Rng;
use std::collections::BTreeMap;
use tn_physics::units::{CrossSection, Flux, Seconds};

/// DRAM generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DdrGeneration {
    /// DDR3 (1.5 V, tested at 1866 MT/s).
    Ddr3,
    /// DDR4 (1.2 V, tested at 2133 MT/s).
    Ddr4,
}

impl std::fmt::Display for DdrGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DdrGeneration::Ddr3 => "DDR3",
            DdrGeneration::Ddr4 => "DDR4",
        })
    }
}

/// Direction of a bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipDirection {
    /// Stored 1 read as 0.
    OneToZero,
    /// Stored 0 read as 1.
    ZeroToOne,
}

impl FlipDirection {
    /// The opposite direction.
    pub fn opposite(self) -> Self {
        match self {
            FlipDirection::OneToZero => FlipDirection::ZeroToOne,
            FlipDirection::ZeroToOne => FlipDirection::OneToZero,
        }
    }
}

/// The data pattern written to the banks before each read sweep.
///
/// "banks are set to 0xFF (or 0x00) and continually read … This
/// read/write loop allows differentiating 1-0 and 0-1 bit flips": with
/// all-ones only 1→0 flips are *observable* (a 0→1 upset lands on a cell
/// that already stores 1), and vice versa. Alternating exposes both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataPattern {
    /// Banks hold 0xFF; only 1→0 flips are visible.
    AllOnes,
    /// Banks hold 0x00; only 0→1 flips are visible.
    AllZeros,
    /// Sweeps alternate between the two patterns (the paper's loop).
    #[default]
    Alternating,
}

impl DataPattern {
    /// Whether a flip of the given direction is observable on sweep
    /// `sweep_index` under this pattern.
    pub fn observes(self, direction: FlipDirection, sweep_index: u64) -> bool {
        match self {
            DataPattern::AllOnes => direction == FlipDirection::OneToZero,
            DataPattern::AllZeros => direction == FlipDirection::ZeroToOne,
            DataPattern::Alternating => {
                if sweep_index % 2 == 0 {
                    direction == FlipDirection::OneToZero
                } else {
                    direction == FlipDirection::ZeroToOne
                }
            }
        }
    }
}

/// The paper's four error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DdrErrorKind {
    /// One wrong read, gone after rewrite.
    Transient,
    /// Recurs at the same location, but not on every read.
    Intermittent,
    /// Stuck-at: every read wrong until annealed.
    Permanent,
    /// Single-event functional interrupt: control logic burp corrupting a
    /// large region for one read.
    Sefi,
}

impl DdrErrorKind {
    /// All categories in tabulation order.
    pub const ALL: [DdrErrorKind; 4] = [
        DdrErrorKind::Transient,
        DdrErrorKind::Intermittent,
        DdrErrorKind::Permanent,
        DdrErrorKind::Sefi,
    ];
}

impl std::fmt::Display for DdrErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DdrErrorKind::Transient => "transient",
            DdrErrorKind::Intermittent => "intermittent",
            DdrErrorKind::Permanent => "permanent",
            DdrErrorKind::Sefi => "SEFI",
        })
    }
}

/// A DDR module's radiation personality.
#[derive(Debug, Clone, PartialEq)]
pub struct DdrModule {
    generation: DdrGeneration,
    capacity_gbit: f64,
    voltage: f64,
    transfer_mt_s: u32,
    timings: Vec<u32>,
    /// Total thermal upset cross section per Gbit (all categories).
    thermal_sigma_per_gbit: CrossSection,
    /// Fraction of upsets in the dominant flip direction.
    dominant_fraction: f64,
    dominant_direction: FlipDirection,
    /// Category mix (sums to 1, same order as `DdrErrorKind::ALL`).
    category_mix: [f64; 4],
    /// High-energy *permanent-damage* cross section per Gbit — the reason
    /// the ChipIR run had to be abandoned.
    he_permanent_sigma_per_gbit: CrossSection,
}

impl DdrModule {
    /// The paper's DDR3 module: 4 GB, 1.5 V, 1866 MT/s, 10-11-10.
    pub fn ddr3() -> Self {
        Self {
            generation: DdrGeneration::Ddr3,
            capacity_gbit: 32.0,
            voltage: 1.5,
            transfer_mt_s: 1866,
            timings: vec![10, 11, 10],
            thermal_sigma_per_gbit: CrossSection(2.0e-10),
            dominant_fraction: 0.96,
            dominant_direction: FlipDirection::OneToZero,
            // transient, intermittent, permanent, SEFI
            category_mix: [0.46, 0.24, 0.26, 0.04],
            he_permanent_sigma_per_gbit: CrossSection(3.0e-9),
        }
    }

    /// The paper's DDR4 module: 8 GB, 1.2 V, 2133 MT/s, 13-15-15-28.
    pub fn ddr4() -> Self {
        Self {
            generation: DdrGeneration::Ddr4,
            capacity_gbit: 64.0,
            voltage: 1.2,
            transfer_mt_s: 2133,
            timings: vec![13, 15, 15, 28],
            thermal_sigma_per_gbit: CrossSection(2.0e-11),
            dominant_fraction: 0.97,
            dominant_direction: FlipDirection::ZeroToOne,
            category_mix: [0.23, 0.12, 0.55, 0.10],
            he_permanent_sigma_per_gbit: CrossSection(3.0e-9),
        }
    }

    /// Generation.
    pub fn generation(&self) -> DdrGeneration {
        self.generation
    }

    /// Capacity in Gbit.
    pub fn capacity_gbit(&self) -> f64 {
        self.capacity_gbit
    }

    /// Operating voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Transfer rate in MT/s.
    pub fn transfer_rate(&self) -> u32 {
        self.transfer_mt_s
    }

    /// CAS-style timing tuple.
    pub fn timings(&self) -> &[u32] {
        &self.timings
    }

    /// Total thermal upset cross section per Gbit.
    pub fn thermal_sigma_per_gbit(&self) -> CrossSection {
        self.thermal_sigma_per_gbit
    }

    /// Thermal cross section per Gbit for one category.
    pub fn thermal_sigma_for(&self, kind: DdrErrorKind) -> CrossSection {
        let idx = DdrErrorKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.thermal_sigma_per_gbit * self.category_mix[idx]
    }

    /// Thermal cross section per Gbit for one flip direction.
    pub fn thermal_sigma_in_direction(&self, direction: FlipDirection) -> CrossSection {
        if direction == self.dominant_direction {
            self.thermal_sigma_per_gbit * self.dominant_fraction
        } else {
            self.thermal_sigma_per_gbit * (1.0 - self.dominant_fraction)
        }
    }

    /// The dominant flip direction (1→0 for DDR3, 0→1 for DDR4).
    pub fn dominant_direction(&self) -> FlipDirection {
        self.dominant_direction
    }

    /// Whole-module thermal event rate (events/s) in a thermal flux.
    pub fn thermal_event_rate(&self, thermal_flux: Flux) -> f64 {
        self.thermal_sigma_per_gbit.value() * self.capacity_gbit * thermal_flux.value()
    }

    /// Whole-module permanent-damage rate (events/s) in a fast flux — what
    /// kills the module at ChipIR in minutes.
    pub fn he_permanent_rate(&self, fast_flux: Flux) -> f64 {
        self.he_permanent_sigma_per_gbit.value() * self.capacity_gbit * fast_flux.value()
    }

    /// Expected beam seconds at the given fast flux until `n` permanent
    /// faults have accumulated.
    pub fn time_to_permanent_faults(&self, fast_flux: Flux, n: u64) -> Seconds {
        Seconds(n as f64 / self.he_permanent_rate(fast_flux))
    }
}

/// One erroneous bit observed during a read sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitError {
    /// Word address.
    pub address: u64,
    /// Flip direction.
    pub direction: FlipDirection,
}

/// All errors seen in one read sweep of the module.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSweep {
    /// Sweep index (0-based).
    pub index: u64,
    /// Time of the sweep since beam-on.
    pub time: Seconds,
    /// Erroneous bits.
    pub errors: Vec<BitError>,
}

/// The full log of a correct-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectLoopLog {
    /// Module generation tested.
    pub generation: DdrGeneration,
    /// Data pattern the loop wrote (the classifier needs it to judge how
    /// often a stuck cell *could* have been seen).
    pub pattern: DataPattern,
    /// Thermal fluence accumulated over the run.
    pub fluence: f64,
    /// Every read sweep (including clean ones, with empty error lists).
    pub sweeps: Vec<ReadSweep>,
}

/// The correct-loop tester: sets the banks, reads them on a cadence, logs
/// mismatches and rewrites — the procedure of the paper's Section "DDR".
#[derive(Debug)]
pub struct CorrectLoop {
    module: DdrModule,
    pattern: DataPattern,
    rng: Rng,
    /// Addresses currently stuck (permanent errors), with direction.
    stuck: BTreeMap<u64, FlipDirection>,
    /// Addresses intermittently failing, with direction and per-read
    /// recurrence probability.
    flaky: BTreeMap<u64, (FlipDirection, f64)>,
}

impl CorrectLoop {
    /// Recurrence probability of an intermittent location per sweep.
    const INTERMITTENT_RECURRENCE: f64 = 0.35;
    /// Number of corrupted bits a SEFI spreads over (uniformly sampled up
    /// to this cap).
    const SEFI_MAX_BITS: usize = 4096;

    /// Creates a tester for the module with a deterministic seed, using
    /// the alternating 0xFF/0x00 pattern of the paper's loop.
    pub fn new(module: DdrModule, seed: u64) -> Self {
        Self {
            module,
            pattern: DataPattern::Alternating,
            rng: Rng::seed_from_u64(seed),
            stuck: BTreeMap::new(),
            flaky: BTreeMap::new(),
        }
    }

    /// Overrides the data pattern (builder style).
    pub fn with_pattern(mut self, pattern: DataPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// The pattern in use.
    pub fn pattern(&self) -> DataPattern {
        self.pattern
    }

    /// The module under test.
    pub fn module(&self) -> &DdrModule {
        &self.module
    }

    /// Number of currently stuck (permanent) locations.
    pub fn stuck_count(&self) -> usize {
        self.stuck.len()
    }

    /// Anneals the module (bakes it): displacement damage heals and the
    /// stuck cells recover — the repair route the paper cites for
    /// permanent errors. Intermittent locations persist (they are not
    /// displacement damage).
    pub fn anneal(&mut self) {
        self.stuck.clear();
    }

    fn sample_direction(&mut self) -> FlipDirection {
        if self.rng.gen_f64() < self.module.dominant_fraction {
            self.module.dominant_direction
        } else {
            self.module.dominant_direction.opposite()
        }
    }

    fn sample_kind(&mut self) -> DdrErrorKind {
        let u: f64 = self.rng.gen_f64();
        let mut acc = 0.0;
        for (i, &k) in DdrErrorKind::ALL.iter().enumerate() {
            acc += self.module.category_mix[i];
            if u < acc {
                return k;
            }
        }
        DdrErrorKind::Sefi
    }

    fn random_address(&mut self) -> u64 {
        let words = (self.module.capacity_gbit * 1e9 / 64.0) as u64;
        self.rng.gen_range(0..words)
    }

    /// Runs the correct loop under a thermal beam.
    ///
    /// `read_interval` is the sweep cadence; events arrive as a Poisson
    /// process at the module's thermal event rate.
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `read_interval` is not strictly positive.
    pub fn run(&mut self, thermal_flux: Flux, duration: Seconds, read_interval: Seconds) -> CorrectLoopLog {
        assert!(duration.value() > 0.0, "duration must be positive");
        assert!(
            read_interval.value() > 0.0 && read_interval.value() <= duration.value(),
            "read interval must be positive and no longer than the run"
        );
        let rate = self.module.thermal_event_rate(thermal_flux);
        let sweeps_n = (duration.value() / read_interval.value()).floor() as u64;
        let mut sweeps = Vec::with_capacity(sweeps_n as usize);
        for index in 0..sweeps_n {
            let dt = read_interval.value();
            // New events since the last sweep.
            let mean = rate * dt;
            let n_events = poisson(&mut self.rng, mean);
            let mut errors: Vec<BitError> = Vec::new();
            for _ in 0..n_events {
                let kind = self.sample_kind();
                let direction = self.sample_direction();
                let address = self.random_address();
                let observable = self.pattern.observes(direction, index);
                match kind {
                    DdrErrorKind::Transient => {
                        if observable {
                            errors.push(BitError { address, direction });
                        }
                    }
                    DdrErrorKind::Intermittent => {
                        self.flaky
                            .insert(address, (direction, Self::INTERMITTENT_RECURRENCE));
                        if observable {
                            errors.push(BitError { address, direction });
                        }
                    }
                    DdrErrorKind::Permanent => {
                        self.stuck.insert(address, direction);
                    }
                    DdrErrorKind::Sefi => {
                        // A SEFI corrupts whole words through the control
                        // path: visible regardless of the stored pattern.
                        let bits = self.rng.gen_range(64..=Self::SEFI_MAX_BITS);
                        let base = self.random_address();
                        for b in 0..bits as u64 {
                            errors.push(BitError {
                                address: base.wrapping_add(b),
                                direction,
                            });
                        }
                    }
                }
            }
            // Stuck cells fail every sweep the pattern exposes them;
            // flaky cells fail stochastically on exposed sweeps.
            for (&address, &direction) in &self.stuck {
                if self.pattern.observes(direction, index) {
                    errors.push(BitError { address, direction });
                }
            }
            let flaky: Vec<(u64, FlipDirection, f64)> = self
                .flaky
                .iter()
                .map(|(&address, &(direction, p))| (address, direction, p))
                .collect();
            for (address, direction, p) in flaky {
                if self.pattern.observes(direction, index) && self.rng.gen_f64() < p {
                    errors.push(BitError { address, direction });
                }
            }
            sweeps.push(ReadSweep {
                index,
                time: Seconds(index as f64 * dt),
                errors,
            });
        }
        CorrectLoopLog {
            generation: self.module.generation(),
            pattern: self.pattern,
            fluence: thermal_flux.value() * duration.value(),
            sweeps,
        }
    }
}

/// Classified error counts recovered from a correct-loop log.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassifiedErrors {
    /// Distinct transient errors.
    pub transient: u64,
    /// Distinct intermittent locations.
    pub intermittent: u64,
    /// Distinct permanent (stuck) locations.
    pub permanent: u64,
    /// SEFI episodes.
    pub sefi: u64,
    /// Single-bit observations outside SEFIs, split by direction.
    pub one_to_zero: u64,
    /// See `one_to_zero`.
    pub zero_to_one: u64,
    /// Bits corrupted by the largest single sweep (SEFI width indicator).
    pub max_bits_in_sweep: usize,
}

impl ClassifiedErrors {
    /// Total distinct classified errors.
    pub fn total(&self) -> u64 {
        self.transient + self.intermittent + self.permanent + self.sefi
    }

    /// Fraction of distinct errors that are permanent.
    pub fn permanent_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.permanent as f64 / self.total() as f64
        }
    }

    /// Fraction of single-bit observations in the dominant direction.
    pub fn direction_fraction(&self, direction: FlipDirection) -> f64 {
        let total = self.one_to_zero + self.zero_to_one;
        if total == 0 {
            return 0.0;
        }
        let n = match direction {
            FlipDirection::OneToZero => self.one_to_zero,
            FlipDirection::ZeroToOne => self.zero_to_one,
        };
        n as f64 / total as f64
    }
}

/// Threshold above which a sweep's error burst is called a SEFI.
const SEFI_BIT_THRESHOLD: usize = 32;

/// Classifies a correct-loop log the way the experimenters did: stuck
/// addresses (wrong on nearly every sweep) are permanent, recurring ones
/// intermittent, one-shot ones transient, and wide *contiguous* bursts
/// SEFIs (a control-logic burp corrupts an address run, unlike the
/// scattered single cells of the other categories).
pub fn classify(log: &CorrectLoopLog) -> ClassifiedErrors {
    let mut out = ClassifiedErrors::default();
    // Address -> sweeps in which it failed (excluding SEFI bursts).
    let mut history: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut direction_of: BTreeMap<u64, FlipDirection> = BTreeMap::new();
    let total_sweeps = log.sweeps.len() as u64;
    for sweep in &log.sweeps {
        // Cluster this sweep's errors by address adjacency; a cluster of
        // SEFI width is one SEFI episode and its addresses are excluded
        // from the per-cell history.
        let mut addresses: Vec<(u64, FlipDirection)> = sweep
            .errors
            .iter()
            .map(|e| (e.address, e.direction))
            .collect();
        addresses.sort_unstable_by_key(|&(a, _)| a);
        let mut cluster_start = 0usize;
        let mut widest = 0usize;
        let flush = |cluster: &[(u64, FlipDirection)],
                         out: &mut ClassifiedErrors,
                         history: &mut BTreeMap<u64, Vec<u64>>,
                         direction_of: &mut BTreeMap<u64, FlipDirection>| {
            if cluster.len() >= SEFI_BIT_THRESHOLD {
                out.sefi += 1;
            } else {
                for &(address, direction) in cluster {
                    history.entry(address).or_default().push(sweep.index);
                    direction_of.insert(address, direction);
                }
            }
        };
        for i in 1..=addresses.len() {
            let boundary = i == addresses.len()
                || addresses[i].0.saturating_sub(addresses[i - 1].0) > 8;
            if boundary {
                let cluster = &addresses[cluster_start..i];
                widest = widest.max(cluster.len());
                flush(cluster, &mut out, &mut history, &mut direction_of);
                cluster_start = i;
            }
        }
        out.max_bits_in_sweep = out.max_bits_in_sweep.max(widest);
    }
    for (address, sweeps) in &history {
        let direction = direction_of[address];
        // A stuck cell fails on (nearly) every sweep whose pattern
        // exposes its direction, from its first appearance onward;
        // "nearly" absorbs sweeps swallowed by a concurrent SEFI burst.
        // Intermittents recur but with gaps beyond the pattern's.
        let exposed = (sweeps[0]..total_sweeps)
            .filter(|&i| log.pattern.observes(direction, i))
            .count()
            .max(1);
        let kind = if sweeps.len() > 2 && sweeps.len() as f64 >= 0.8 * exposed as f64 {
            DdrErrorKind::Permanent
        } else if sweeps.len() > 1 {
            DdrErrorKind::Intermittent
        } else {
            DdrErrorKind::Transient
        };
        match kind {
            DdrErrorKind::Permanent => out.permanent += 1,
            DdrErrorKind::Intermittent => out.intermittent += 1,
            DdrErrorKind::Transient => out.transient += 1,
            DdrErrorKind::Sefi => unreachable!("SEFIs are classified per sweep"),
        }
        match direction {
            FlipDirection::OneToZero => out.one_to_zero += 1,
            FlipDirection::ZeroToOne => out.zero_to_one += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_is_an_order_of_magnitude_less_sensitive() {
        let r = DdrModule::ddr3().thermal_sigma_per_gbit()
            / DdrModule::ddr4().thermal_sigma_per_gbit();
        assert!((r - 10.0).abs() < 1.0, "ratio = {r}");
    }

    #[test]
    fn dominant_directions_are_opposite() {
        assert_eq!(DdrModule::ddr3().dominant_direction(), FlipDirection::OneToZero);
        assert_eq!(DdrModule::ddr4().dominant_direction(), FlipDirection::ZeroToOne);
    }

    #[test]
    fn category_mixes_sum_to_one() {
        for m in [DdrModule::ddr3(), DdrModule::ddr4()] {
            let sum: f64 = DdrErrorKind::ALL
                .iter()
                .map(|&k| m.thermal_sigma_for(k).value())
                .sum();
            assert!(
                (sum - m.thermal_sigma_per_gbit().value()).abs() < 1e-24,
                "{}",
                m.generation()
            );
        }
    }

    #[test]
    fn permanent_mix_matches_paper_bands() {
        let ddr3 = DdrModule::ddr3();
        let ddr4 = DdrModule::ddr4();
        let perm3 = ddr3.thermal_sigma_for(DdrErrorKind::Permanent).value()
            / ddr3.thermal_sigma_per_gbit().value();
        let perm4 = ddr4.thermal_sigma_for(DdrErrorKind::Permanent).value()
            / ddr4.thermal_sigma_per_gbit().value();
        assert!(perm3 < 0.30, "DDR3 permanent fraction {perm3}");
        assert!(perm4 > 0.50, "DDR4 permanent fraction {perm4}");
    }

    #[test]
    fn direction_asymmetry_is_at_least_95_percent() {
        for m in [DdrModule::ddr3(), DdrModule::ddr4()] {
            let dominant = m.thermal_sigma_in_direction(m.dominant_direction());
            let frac = dominant.value() / m.thermal_sigma_per_gbit().value();
            assert!(frac >= 0.95, "{}: {frac}", m.generation());
        }
    }

    #[test]
    fn chipir_kills_modules_in_minutes() {
        // The paper: "after few minutes of irradiation at ChipIR both DDR3
        // and DDR4 experienced a high number of permanent faults".
        let chipir_fast = Flux(5.4e6);
        for m in [DdrModule::ddr3(), DdrModule::ddr4()] {
            let t = m.time_to_permanent_faults(chipir_fast, 50);
            assert!(
                t.value() < 600.0,
                "{}: {} s to 50 permanents",
                m.generation(),
                t.value()
            );
        }
    }

    #[test]
    fn correct_loop_produces_errors_under_beam() {
        let mut tester = CorrectLoop::new(DdrModule::ddr3(), 42);
        let log = tester.run(Flux(2.72e6), Seconds(3000.0), Seconds(10.0));
        assert_eq!(log.sweeps.len(), 300);
        let classified = classify(&log);
        assert!(classified.total() > 10, "{classified:?}");
    }

    #[test]
    fn classifier_recovers_direction_asymmetry() {
        let module = DdrModule::ddr3();
        let mut tester = CorrectLoop::new(module.clone(), 7);
        let log = tester.run(Flux(2.72e6), Seconds(6000.0), Seconds(10.0));
        let classified = classify(&log);
        let frac = classified.direction_fraction(module.dominant_direction());
        assert!(frac > 0.85, "dominant-direction fraction = {frac}");
    }

    #[test]
    fn classifier_sees_more_permanents_on_ddr4() {
        let mut t3 = CorrectLoop::new(DdrModule::ddr3(), 11);
        let mut t4 = CorrectLoop::new(DdrModule::ddr4(), 11);
        // DDR4 is 10x less sensitive; give it 10x the fluence for similar
        // counts.
        let log3 = t3.run(Flux(2.72e6), Seconds(4000.0), Seconds(10.0));
        let log4 = t4.run(Flux(2.72e7), Seconds(4000.0), Seconds(10.0));
        let c3 = classify(&log3);
        let c4 = classify(&log4);
        assert!(
            c4.permanent_fraction() > c3.permanent_fraction(),
            "DDR3 {} vs DDR4 {}",
            c3.permanent_fraction(),
            c4.permanent_fraction()
        );
    }

    #[test]
    fn sefis_are_wide_and_detected() {
        let mut tester = CorrectLoop::new(DdrModule::ddr4(), 13);
        let log = tester.run(Flux(2.72e7), Seconds(8000.0), Seconds(10.0));
        let classified = classify(&log);
        assert!(classified.sefi > 0, "expected at least one SEFI");
        assert!(
            classified.max_bits_in_sweep >= SEFI_BIT_THRESHOLD,
            "max bits {}",
            classified.max_bits_in_sweep
        );
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let mut tester = CorrectLoop::new(DdrModule::ddr3(), 1);
        let _ = tester.run(Flux(1.0), Seconds(0.0), Seconds(1.0));
    }

    #[test]
    fn all_ones_pattern_sees_only_one_to_zero() {
        let mut tester =
            CorrectLoop::new(DdrModule::ddr3(), 51).with_pattern(DataPattern::AllOnes);
        assert_eq!(tester.pattern(), DataPattern::AllOnes);
        let log = tester.run(Flux(2.72e6), Seconds(4000.0), Seconds(10.0));
        for sweep in &log.sweeps {
            // SEFI bursts are exempt (control-path corruption); single
            // cells must all be 1->0.
            if sweep.errors.len() < 32 {
                for e in &sweep.errors {
                    assert_eq!(e.direction, FlipDirection::OneToZero);
                }
            }
        }
    }

    #[test]
    fn all_zeros_pattern_on_ddr3_sees_almost_nothing() {
        // DDR3's dominant direction is 1->0; holding 0x00 hides 96% of
        // its upsets — the reason the loop alternates patterns.
        let count = |pattern| {
            let mut tester = CorrectLoop::new(DdrModule::ddr3(), 53).with_pattern(pattern);
            let log = tester.run(Flux(2.72e6), Seconds(4000.0), Seconds(10.0));
            classify(&log).total()
        };
        let ones = count(DataPattern::AllOnes);
        let zeros = count(DataPattern::AllZeros);
        assert!(
            (zeros as f64) < 0.4 * ones as f64,
            "0x00 {zeros} vs 0xFF {ones}"
        );
    }

    #[test]
    fn alternating_pattern_recovers_both_directions() {
        let mut tester = CorrectLoop::new(DdrModule::ddr3(), 55);
        let log = tester.run(Flux(2.72e6), Seconds(8000.0), Seconds(10.0));
        let c = classify(&log);
        assert!(c.one_to_zero > 0);
        // The 4% minority direction needs statistics; just require the
        // majority is recovered correctly.
        let frac = c.direction_fraction(FlipDirection::OneToZero);
        assert!(frac > 0.8, "dominant fraction {frac}");
    }

    #[test]
    fn pattern_observability_table() {
        use DataPattern::*;
        assert!(AllOnes.observes(FlipDirection::OneToZero, 0));
        assert!(!AllOnes.observes(FlipDirection::ZeroToOne, 0));
        assert!(AllZeros.observes(FlipDirection::ZeroToOne, 7));
        assert!(!AllZeros.observes(FlipDirection::OneToZero, 7));
        assert!(Alternating.observes(FlipDirection::OneToZero, 0));
        assert!(Alternating.observes(FlipDirection::ZeroToOne, 1));
        assert!(!Alternating.observes(FlipDirection::ZeroToOne, 0));
    }

    #[test]
    fn annealing_heals_permanent_errors_only() {
        let mut tester = CorrectLoop::new(DdrModule::ddr3(), 77);
        let _ = tester.run(Flux(2.72e6), Seconds(4000.0), Seconds(10.0));
        assert!(tester.stuck_count() > 0, "need stuck cells to heal");
        let flaky_before = tester.flaky.len();
        tester.anneal();
        assert_eq!(tester.stuck_count(), 0);
        assert_eq!(tester.flaky.len(), flaky_before, "intermittents persist");
        // After annealing, a fresh run shows no immediate permanents.
        let log = tester.run(Flux(2.72e4), Seconds(100.0), Seconds(10.0));
        let stuck_hits = log
            .sweeps
            .first()
            .map(|s| s.errors.len())
            .unwrap_or(0);
        // Only flaky recurrences may appear; far fewer than before.
        assert!(stuck_hits < 50);
    }

    #[test]
    fn module_metadata_matches_paper() {
        let d3 = DdrModule::ddr3();
        assert_eq!(d3.capacity_gbit(), 32.0); // 4 GB
        assert_eq!(d3.voltage(), 1.5);
        assert_eq!(d3.transfer_rate(), 1866);
        assert_eq!(d3.timings(), &[10, 11, 10]);
        let d4 = DdrModule::ddr4();
        assert_eq!(d4.capacity_gbit(), 64.0); // 8 GB
        assert_eq!(d4.voltage(), 1.2);
        assert_eq!(d4.transfer_rate(), 2133);
        assert_eq!(d4.timings(), &[13, 15, 15, 28]);
    }

    #[test]
    fn flip_direction_opposite_is_involutive() {
        for d in [FlipDirection::OneToZero, FlipDirection::ZeroToOne] {
            assert_eq!(d.opposite().opposite(), d);
        }
    }
}
