//! The physical response model mapping a neutron field to device upsets.
//!
//! Every device is described by two [`SensitiveRegion`]s:
//!
//! * a **datapath** region (register files, caches, flip-flops, config
//!   bits) whose upsets surface as output corruption — **SDC** candidates,
//!   subject to program-level masking;
//! * a **control** region (schedulers, memory controllers, CPU↔GPU
//!   synchronisation logic) whose upsets hang or kill the run — **DUE**s.
//!
//! Each region responds to two mechanisms:
//!
//! * **fast neutrons** (elastic/inelastic silicon recoils): a threshold
//!   response that turns on between 0.2 and 2 MeV and is flat above —
//!   parameterised directly as a saturated cross section;
//! * **thermal neutrons** via ¹⁰B(n,α)⁷Li: an exact 1/v response whose
//!   magnitude is the product of the region's exposed ¹⁰B population and
//!   the alpha/lithium upset probability — the `b10_effective_atoms`
//!   parameter. A boron-free device has zero here and is immune, exactly
//!   as the paper argues.

use tn_physics::capture::b10_capture;
use tn_physics::units::{CrossSection, Energy, Flux};
use tn_physics::Spectrum;

/// The two observable error classes of a beam experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Silent data corruption: wrong output, no symptom.
    Sdc,
    /// Detected unrecoverable error: crash, hang, device drop-off.
    Due,
}

impl ErrorClass {
    /// Both classes, in the order tables are printed.
    pub const ALL: [ErrorClass; 2] = [ErrorClass::Sdc, ErrorClass::Due];
}

impl std::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorClass::Sdc => "SDC",
            ErrorClass::Due => "DUE",
        })
    }
}

/// Energy (eV) below which the fast-recoil mechanism is fully off.
const FAST_THRESHOLD_LO: f64 = 0.2e6;
/// Energy (eV) above which the fast-recoil mechanism is saturated.
const FAST_THRESHOLD_HI: f64 = 2.0e6;

/// One sensitive region of a die: its fast-recoil cross section and its
/// effective ¹⁰B population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitiveRegion {
    fast_saturated: CrossSection,
    b10_effective_atoms: f64,
}

impl SensitiveRegion {
    /// Creates a region.
    ///
    /// `fast_saturated` is the cross section presented to ≥ 2 MeV
    /// neutrons. `b10_effective_atoms` is the number of ¹⁰B atoms in the
    /// region weighted by the probability that their capture products
    /// upset a cell; it absorbs die area, areal doping density and
    /// critical charge into one fitted scalar.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative or non-finite.
    pub fn new(fast_saturated: CrossSection, b10_effective_atoms: f64) -> Self {
        assert!(
            fast_saturated.value() >= 0.0 && fast_saturated.is_finite(),
            "fast cross section must be finite and non-negative"
        );
        assert!(
            b10_effective_atoms >= 0.0 && b10_effective_atoms.is_finite(),
            "B10 population must be finite and non-negative"
        );
        Self {
            fast_saturated,
            b10_effective_atoms,
        }
    }

    /// A region with no ¹⁰B at all (depleted/boron-free process).
    pub fn boron_free(fast_saturated: CrossSection) -> Self {
        Self::new(fast_saturated, 0.0)
    }

    /// The saturated fast-recoil cross section.
    pub fn fast_saturated(&self) -> CrossSection {
        self.fast_saturated
    }

    /// The effective ¹⁰B population.
    pub fn b10_effective_atoms(&self) -> f64 {
        self.b10_effective_atoms
    }

    /// Fast-mechanism cross section at energy `e` (threshold ramp).
    pub fn fast_cross_section_at(&self, e: Energy) -> CrossSection {
        let ev = e.value();
        let weight = if ev <= FAST_THRESHOLD_LO {
            0.0
        } else if ev >= FAST_THRESHOLD_HI {
            1.0
        } else {
            (ev - FAST_THRESHOLD_LO) / (FAST_THRESHOLD_HI - FAST_THRESHOLD_LO)
        };
        self.fast_saturated * weight
    }

    /// Thermal-mechanism (¹⁰B capture) cross section at energy `e`;
    /// exact 1/v law, valid from cold to epithermal energies.
    pub fn b10_cross_section_at(&self, e: Energy) -> CrossSection {
        b10_capture(e).to_cross_section() * self.b10_effective_atoms
    }

    /// Total upset cross section at energy `e`.
    pub fn cross_section_at(&self, e: Energy) -> CrossSection {
        self.fast_cross_section_at(e) + self.b10_cross_section_at(e)
    }

    /// Expected upset rate (events/s) of this region in the given neutron
    /// field: ∫ σ(E)·φ(E) dE over the spectrum.
    pub fn event_rate(&self, spectrum: &Spectrum) -> f64 {
        // Log-grid quadrature over the full tabulation range.
        let grid = tn_physics::EnergyGrid::log_spaced(Energy(1e-4), Energy(1e10), 800);
        let pts = grid.points();
        let mut rate = 0.0;
        for w in pts.windows(2) {
            let (e0, e1) = (w[0], w[1]);
            let f0 = spectrum.density(e0) * self.cross_section_at(e0).value();
            let f1 = spectrum.density(e1) * self.cross_section_at(e1).value();
            rate += 0.5 * (f0 + f1) * (e1.value() - e0.value());
        }
        rate
    }
}

/// A device's full response: one region per error class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceResponse {
    sdc: SensitiveRegion,
    due: SensitiveRegion,
}

impl DeviceResponse {
    /// Creates a response from the two regions.
    pub fn new(sdc: SensitiveRegion, due: SensitiveRegion) -> Self {
        Self { sdc, due }
    }

    /// The region feeding the given error class.
    pub fn region(&self, class: ErrorClass) -> &SensitiveRegion {
        match class {
            ErrorClass::Sdc => &self.sdc,
            ErrorClass::Due => &self.due,
        }
    }

    /// Expected event rate (events/s) for an error class in a field.
    pub fn event_rate(&self, class: ErrorClass, spectrum: &Spectrum) -> f64 {
        self.region(class).event_rate(spectrum)
    }

    /// Saturated fast SDC cross section (used by FIT arithmetic, where the
    /// quoting convention is the >10 MeV flux).
    pub fn fast_sdc_sensitivity(&self) -> CrossSection {
        self.sdc.fast_saturated()
    }

    /// Thermal SDC cross section at energy `e`.
    pub fn thermal_sdc_sensitivity(&self, e: Energy) -> CrossSection {
        self.sdc.b10_cross_section_at(e)
    }

    /// Field error rate (events/s) given separate high-energy and thermal
    /// fluxes — the natural-environment analogue of [`Self::event_rate`],
    /// using the convention that σ_HE is quoted against the >10 MeV flux
    /// and σ_th against the full thermal flux.
    pub fn field_rate(&self, class: ErrorClass, high_energy: Flux, thermal: Flux) -> f64 {
        let region = self.region(class);
        region.fast_saturated().value() * high_energy.value()
            + region
                .b10_cross_section_at(tn_physics::constants::THERMAL_ENERGY)
                .value()
                * thermal.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_physics::constants::{ROOM_TEMPERATURE, THERMAL_ENERGY};
    use tn_physics::{Shape, Spectrum};
    use tn_physics::units::Flux;

    fn region() -> SensitiveRegion {
        SensitiveRegion::new(CrossSection(1e-9), 1e11)
    }

    #[test]
    fn fast_threshold_ramp() {
        let r = region();
        assert_eq!(r.fast_cross_section_at(Energy(1.0)).value(), 0.0);
        assert_eq!(r.fast_cross_section_at(Energy(0.1e6)).value(), 0.0);
        let mid = r.fast_cross_section_at(Energy(1.1e6)).value();
        assert!(mid > 0.0 && mid < 1e-9);
        assert_eq!(r.fast_cross_section_at(Energy(10e6)).value(), 1e-9);
        assert_eq!(r.fast_cross_section_at(Energy(1e9)).value(), 1e-9);
    }

    #[test]
    fn thermal_cross_section_follows_one_over_v() {
        let r = region();
        let at_thermal = r.b10_cross_section_at(THERMAL_ENERGY).value();
        let at_4x = r.b10_cross_section_at(Energy(4.0 * THERMAL_ENERGY.value())).value();
        assert!((at_thermal / at_4x - 2.0).abs() < 1e-9);
        // 1e11 atoms x 3837 b = 1e11 * 3.837e-21 cm^2 = 3.837e-10 cm^2.
        assert!((at_thermal - 3.837e-10).abs() < 1e-13);
    }

    #[test]
    fn boron_free_region_is_thermal_immune() {
        let r = SensitiveRegion::boron_free(CrossSection(1e-9));
        assert_eq!(r.b10_cross_section_at(THERMAL_ENERGY).value(), 0.0);
        let thermal_beam = Spectrum::named("th").with(
            Shape::Maxwellian {
                temperature: ROOM_TEMPERATURE,
            },
            Flux(2.72e6),
        );
        assert!(r.event_rate(&thermal_beam) < 1e-12);
    }

    #[test]
    fn event_rate_in_pure_thermal_beam_matches_closed_form() {
        let r = SensitiveRegion::new(CrossSection::ZERO, 1e11);
        let beam = Spectrum::named("th").with(
            Shape::Maxwellian {
                temperature: ROOM_TEMPERATURE,
            },
            Flux(2.72e6),
        );
        // For a 1/v absorber in a Maxwellian flux of temperature T the
        // spectrum-averaged sigma is sqrt(pi)/2 x sigma(kT).
        let sigma_kt = r.b10_cross_section_at(Energy::thermal_at(ROOM_TEMPERATURE)).value();
        let expected = 2.72e6 * sigma_kt * (std::f64::consts::PI.sqrt() / 2.0);
        let rate = r.event_rate(&beam);
        assert!(
            (rate - expected).abs() / expected < 0.03,
            "rate {rate:e} vs expected {expected:e}"
        );
    }

    #[test]
    fn event_rate_in_fast_beam_matches_closed_form() {
        let r = SensitiveRegion::boron_free(CrossSection(1e-9));
        let beam = Spectrum::named("fast").with(
            Shape::PowerLaw {
                lo: Energy(10e6),
                hi: Energy(1e9),
                gamma: 1.5,
            },
            Flux(5.4e6),
        );
        // Entire beam is above the saturation threshold.
        let expected = 5.4e6 * 1e-9;
        let rate = r.event_rate(&beam);
        assert!(
            (rate - expected).abs() / expected < 0.02,
            "rate {rate:e} vs {expected:e}"
        );
    }

    #[test]
    fn field_rate_combines_both_mechanisms() {
        let resp = DeviceResponse::new(region(), SensitiveRegion::boron_free(CrossSection(1e-10)));
        let sdc = resp.field_rate(ErrorClass::Sdc, Flux(10.0), Flux(10.0));
        let expected = 1e-9 * 10.0 + 3.837e-10 * 10.0;
        assert!((sdc - expected).abs() / expected < 1e-9);
        let due = resp.field_rate(ErrorClass::Due, Flux(10.0), Flux(10.0));
        assert!((due - 1e-10 * 10.0).abs() / (1e-10 * 10.0) < 1e-9);
    }

    #[test]
    fn region_accessor_maps_classes() {
        let resp = DeviceResponse::new(region(), SensitiveRegion::boron_free(CrossSection(5e-10)));
        assert_eq!(resp.region(ErrorClass::Sdc).b10_effective_atoms(), 1e11);
        assert_eq!(resp.region(ErrorClass::Due).b10_effective_atoms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_b10_rejected() {
        let _ = SensitiveRegion::new(CrossSection(1e-9), -1.0);
    }

    #[test]
    fn error_class_display() {
        assert_eq!(ErrorClass::Sdc.to_string(), "SDC");
        assert_eq!(ErrorClass::Due.to_string(), "DUE");
    }
}
