//! Shared stochastic sampling helpers for device models.
//!
//! The Poisson sampler lives in [`tn_physics::stats`]; it is re-exported
//! here because every device model draws event counts from it.

pub use tn_physics::stats::poisson;

#[cfg(test)]
mod tests {
    use super::*;
    use tn_rng::Rng;

    #[test]
    fn mean_is_respected_across_regimes() {
        let mut rng = Rng::seed_from_u64(3);
        for mean in [0.5, 5.0, 80.0, 500.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let est = total as f64 / n as f64;
            assert!((est - mean).abs() / mean < 0.05, "mean {mean}: est {est}");
        }
    }

    #[test]
    fn variance_matches_mean() {
        let mut rng = Rng::seed_from_u64(9);
        let mean = 12.0;
        let n = 30_000;
        let draws: Vec<f64> = (0..n).map(|_| poisson(&mut rng, mean) as f64).collect();
        let m: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((var - mean).abs() / mean < 0.1, "var = {var}");
    }

    #[test]
    fn zero_mean_is_zero() {
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mean_rejected() {
        let mut rng = Rng::seed_from_u64(4);
        let _ = poisson(&mut rng, -1.0);
    }
}
