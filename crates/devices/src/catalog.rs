//! The catalog of devices the paper irradiated, with their fitted
//! response models.
//!
//! ## How the free parameters are chosen
//!
//! The paper never publishes absolute cross sections (business-sensitive);
//! what it publishes — and what we must reproduce — are the
//! **high-energy / thermal cross-section ratios** of Figure 5:
//!
//! | device            | SDC ratio | DUE ratio | note |
//! |-------------------|-----------|-----------|------|
//! | Intel Xeon Phi    | 10.14     | 6.37      | little/depleted boron |
//! | NVIDIA K20        | ≈ 2       | ≈ 3       | 28 nm planar CMOS |
//! | NVIDIA TitanX     | ≈ 3       | ≈ 7       | 16 nm FinFET |
//! | NVIDIA TitanV     | ≈ 2.5     | ≈ 6       | 12 nm FinFET (companion paper) |
//! | AMD APU (CPU)     | ≈ 2.5     | ≈ 1.5     | |
//! | AMD APU (GPU)     | ≈ 3       | ≈ 1.3     | |
//! | AMD APU (CPU+GPU) | ≈ 2.5     | 1.18      | sync logic thermal-weak |
//! | Xilinx FPGA       | 2.33      | —         | no DUE ever observed |
//!
//! Per device and error class we pick a *fast* saturated cross section at
//! a plausible absolute scale, then solve the effective ¹⁰B population in
//! closed form so that the ratio of spectrum-folded beam responses —
//! ChipIR events over >10 MeV fluence vs ROTAX events over thermal
//! fluence, exactly the estimator a campaign applies — equals the target.
//! The thermal sensitivity is therefore still *mechanistic* (1/v capture
//! folded over the real beam spectra); only its magnitude is fitted, which
//! is the honest inverse of what the paper did: they measured the ratio to
//! infer the boron content.

use crate::response::{DeviceResponse, ErrorClass, SensitiveRegion};
use tn_physics::constants::THERMAL_CUTOFF;
use tn_physics::spectrum::{chipir_reference, rotax_reference};
use tn_physics::units::{CrossSection, Energy};
use tn_physics::{EnergyBand, Spectrum};

/// Transistor structure, which the paper correlates with thermal
/// sensitivity (planar CMOS devices looked more susceptible than FinFET).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransistorKind {
    /// Planar bulk CMOS.
    PlanarCmos,
    /// FinFET (TSMC 16/12 nm).
    FinFet,
    /// Intel 3-D Tri-gate.
    TriGate,
}

/// Manufacturing technology of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Feature size in nanometres.
    pub node_nm: u32,
    /// Transistor structure.
    pub transistor: TransistorKind,
    /// Foundry name.
    pub foundry: &'static str,
}

/// Broad device category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Many-core HPC accelerator (Xeon Phi).
    ManyCore,
    /// Discrete GPU.
    Gpu,
    /// CPU+GPU on one die, CPU side active.
    ApuCpu,
    /// CPU+GPU on one die, GPU side active.
    ApuGpu,
    /// CPU+GPU on one die, both active (50/50 split).
    ApuHybrid,
    /// SRAM-based FPGA.
    Fpga,
}

/// A catalog device: identity, technology and fitted radiation response.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    vendor: &'static str,
    kind: DeviceKind,
    technology: Technology,
    response: DeviceResponse,
    /// The Figure-5 target ratios this device was fitted to (SDC, DUE).
    target_ratios: (f64, Option<f64>),
}

impl Device {
    /// Device display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vendor name.
    pub fn vendor(&self) -> &'static str {
        self.vendor
    }

    /// Device category.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Manufacturing technology.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// The fitted radiation response.
    pub fn response(&self) -> &DeviceResponse {
        &self.response
    }

    /// The paper ratio targets used in the fit: `(SDC, DUE)`; `None` DUE
    /// means the paper observed none (FPGA).
    pub fn target_ratios(&self) -> (f64, Option<f64>) {
        self.target_ratios
    }

    /// Analytic high-energy/thermal cross-section ratio for an error
    /// class, using the same estimator as a beam campaign (ChipIR events
    /// over >10 MeV fluence vs ROTAX events over thermal fluence).
    pub fn analytic_ratio(&self, class: ErrorClass) -> f64 {
        let chipir = chipir_reference();
        let rotax = rotax_reference();
        let sigma_he = self.response.event_rate(class, &chipir)
            / chipir.flux_in(EnergyBand::HighEnergy).value();
        let sigma_th =
            self.response.event_rate(class, &rotax) / rotax.flux_in(EnergyBand::Thermal).value();
        if sigma_th == 0.0 {
            f64::INFINITY
        } else {
            sigma_he / sigma_th
        }
    }
}

/// Solves the effective ¹⁰B population so the beam-estimator ratio equals
/// `target`, given the region's fast saturated cross section.
///
/// Writing the ChipIR event rate as `F + B·c_chipir` and the ROTAX rate as
/// `B·c_rotax` (`B` = ¹⁰B population, `c` = per-atom capture folds, `F` =
/// fast-mechanism fold), the measured ratio is
/// `(F + B·c_chipir)/Φ_he ÷ (B·c_rotax)/Φ_th`, linear in `1/B` — so `B`
/// has the closed form implemented here.
///
/// # Panics
///
/// Panics if `target` is too small to be reachable (the ChipIR thermal
/// tail already produces a ratio floor) or not finite.
pub fn fit_b10_population(fast_saturated: CrossSection, target: f64) -> f64 {
    assert!(target.is_finite() && target > 0.0, "target ratio must be positive");
    let chipir = chipir_reference();
    let rotax = rotax_reference();
    let phi_he = chipir.flux_in(EnergyBand::HighEnergy).value();
    let phi_th = rotax.flux_in(EnergyBand::Thermal).value();

    // Per-unit-B10 capture folds on each beam.
    let unit = SensitiveRegion::new(CrossSection::ZERO, 1.0);
    let c_chipir = unit.event_rate(&chipir);
    let c_rotax = unit.event_rate(&rotax);
    // Fast-mechanism fold on ChipIR (independent of B10).
    let fast_only = SensitiveRegion::boron_free(fast_saturated);
    let f_chipir = fast_only.event_rate(&chipir);

    // target = (f + B*c_chipir)/phi_he * phi_th/(B*c_rotax)
    // => B = f * phi_th / (target * phi_he * c_rotax - phi_th * c_chipir)
    let denom = target * phi_he * c_rotax - phi_th * c_chipir;
    assert!(
        denom > 0.0,
        "target ratio {target} below the floor set by ChipIR's own thermal tail"
    );
    f_chipir * phi_th / denom
}

// Internal constructor mirroring the catalog's table layout: one argument
// per column is clearer here than a builder.
#[allow(clippy::too_many_arguments)]
fn device(
    name: &str,
    vendor: &'static str,
    kind: DeviceKind,
    technology: Technology,
    fast_sdc: CrossSection,
    sdc_ratio: f64,
    fast_due: CrossSection,
    due_ratio: Option<f64>,
) -> Device {
    let sdc = SensitiveRegion::new(fast_sdc, fit_b10_population(fast_sdc, sdc_ratio));
    let due = match due_ratio {
        Some(r) => SensitiveRegion::new(fast_due, fit_b10_population(fast_due, r)),
        None => SensitiveRegion::boron_free(fast_due),
    };
    Device {
        name: name.to_string(),
        vendor,
        kind,
        technology,
        response: DeviceResponse::new(sdc, due),
        target_ratios: (sdc_ratio, due_ratio),
    }
}

/// Intel Xeon Phi 3120A (Knights Corner), 22 nm Tri-gate.
///
/// Weak thermal response (ratio > 10): consistent with depleted or little
/// boron in Intel's process.
pub fn xeon_phi() -> Device {
    device(
        "Intel Xeon Phi",
        "Intel",
        DeviceKind::ManyCore,
        Technology {
            node_nm: 22,
            transistor: TransistorKind::TriGate,
            foundry: "Intel",
        },
        CrossSection(8.0e-9),
        10.14,
        CrossSection(5.0e-9),
        Some(6.37),
    )
}

/// NVIDIA K20 (Kepler), 28 nm TSMC planar CMOS.
pub fn nvidia_k20() -> Device {
    device(
        "NVIDIA K20",
        "NVIDIA",
        DeviceKind::Gpu,
        Technology {
            node_nm: 28,
            transistor: TransistorKind::PlanarCmos,
            foundry: "TSMC",
        },
        CrossSection(2.6e-8),
        2.0,
        CrossSection(1.3e-8),
        Some(3.0),
    )
}

/// NVIDIA TitanX (Pascal), 16 nm TSMC FinFET.
pub fn nvidia_titanx() -> Device {
    device(
        "NVIDIA TitanX",
        "NVIDIA",
        DeviceKind::Gpu,
        Technology {
            node_nm: 16,
            transistor: TransistorKind::FinFet,
            foundry: "TSMC",
        },
        CrossSection(1.6e-8),
        3.0,
        CrossSection(9.0e-9),
        Some(7.0),
    )
}

/// NVIDIA TitanV (Volta), 12 nm TSMC FinFET.
///
/// Figure 5 centres on the other devices; TitanV targets follow the
/// companion-paper discussion (MxM-only thermal data).
pub fn nvidia_titanv() -> Device {
    device(
        "NVIDIA TitanV",
        "NVIDIA",
        DeviceKind::Gpu,
        Technology {
            node_nm: 12,
            transistor: TransistorKind::FinFet,
            foundry: "TSMC",
        },
        CrossSection(1.4e-8),
        2.5,
        CrossSection(8.0e-9),
        Some(6.0),
    )
}

/// AMD A10-7890K APU, CPU side only (28 nm GlobalFoundries SHP bulk).
pub fn amd_apu_cpu() -> Device {
    device(
        "AMD APU (CPU)",
        "AMD",
        DeviceKind::ApuCpu,
        Technology {
            node_nm: 28,
            transistor: TransistorKind::PlanarCmos,
            foundry: "GlobalFoundries",
        },
        CrossSection(9.0e-9),
        2.5,
        CrossSection(3.0e-9),
        Some(1.5),
    )
}

/// AMD A10-7890K APU, GPU side only.
pub fn amd_apu_gpu() -> Device {
    device(
        "AMD APU (GPU)",
        "AMD",
        DeviceKind::ApuGpu,
        Technology {
            node_nm: 28,
            transistor: TransistorKind::PlanarCmos,
            foundry: "GlobalFoundries",
        },
        CrossSection(1.1e-8),
        3.0,
        CrossSection(4.0e-9),
        Some(1.3),
    )
}

/// AMD A10-7890K APU, CPU+GPU 50/50 concurrent workload.
///
/// The DUE ratio of 1.18 is the paper's headline: the CPU↔GPU
/// synchronisation logic is nearly as sensitive to a thermal neutron as
/// to a high-energy one.
pub fn amd_apu_hybrid() -> Device {
    device(
        "AMD APU (CPU+GPU)",
        "AMD",
        DeviceKind::ApuHybrid,
        Technology {
            node_nm: 28,
            transistor: TransistorKind::PlanarCmos,
            foundry: "GlobalFoundries",
        },
        CrossSection(1.0e-8),
        2.5,
        CrossSection(5.0e-9),
        Some(1.18),
    )
}

/// Xilinx Zynq-7000 FPGA, 28 nm TSMC. Configuration-memory upsets are
/// persistent; the paper never observed a DUE.
pub fn xilinx_zynq() -> Device {
    device(
        "Xilinx Zynq-7000",
        "Xilinx",
        DeviceKind::Fpga,
        Technology {
            node_nm: 28,
            transistor: TransistorKind::PlanarCmos,
            foundry: "TSMC",
        },
        CrossSection(7.0e-9),
        2.33,
        CrossSection(0.0),
        None,
    )
}

/// All compute devices of the study, in the order the paper tabulates
/// them (the DDR modules live in [`crate::ddr`]).
pub fn all_compute_devices() -> Vec<Device> {
    vec![
        xeon_phi(),
        nvidia_k20(),
        nvidia_titanx(),
        nvidia_titanv(),
        amd_apu_cpu(),
        amd_apu_gpu(),
        amd_apu_hybrid(),
        xilinx_zynq(),
    ]
}

/// Is most of this spectrum's flux in the thermal band? Convenience used
/// by campaign code to pick the right quoting convention.
pub fn is_thermal_beam(spectrum: &Spectrum) -> bool {
    let thermal = spectrum.flux_between(Energy(1e-4), THERMAL_CUTOFF).value();
    thermal > 0.5 * spectrum.total_flux().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_devices() {
        assert_eq!(all_compute_devices().len(), 8);
    }

    #[test]
    fn fitted_ratios_match_targets_analytically() {
        for d in all_compute_devices() {
            let (sdc_target, due_target) = d.target_ratios();
            let sdc = d.analytic_ratio(ErrorClass::Sdc);
            assert!(
                (sdc - sdc_target).abs() / sdc_target < 0.02,
                "{}: SDC ratio {sdc} vs target {sdc_target}",
                d.name()
            );
            if let Some(t) = due_target {
                let due = d.analytic_ratio(ErrorClass::Due);
                assert!(
                    (due - t).abs() / t < 0.02,
                    "{}: DUE ratio {due} vs target {t}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn xeon_phi_has_least_boron_per_fast_area() {
        // Thermal weakness = low B10 per unit fast cross section.
        let devices = all_compute_devices();
        let relative_boron = |d: &Device| {
            d.response().region(ErrorClass::Sdc).b10_effective_atoms()
                / d.response().region(ErrorClass::Sdc).fast_saturated().value()
        };
        let phi = relative_boron(&xeon_phi());
        for d in &devices {
            if d.name() != "Intel Xeon Phi" {
                assert!(
                    relative_boron(d) > phi,
                    "{} should carry more B10 per fast area than Xeon Phi",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn fpga_never_dues() {
        let fpga = xilinx_zynq();
        assert!(fpga.analytic_ratio(ErrorClass::Due).is_infinite());
        assert_eq!(
            fpga.response().region(ErrorClass::Due).b10_effective_atoms(),
            0.0
        );
    }

    #[test]
    fn apu_hybrid_due_is_nearly_thermal_parity() {
        let due = amd_apu_hybrid().analytic_ratio(ErrorClass::Due);
        assert!((due - 1.18).abs() < 0.05, "DUE ratio = {due}");
    }

    #[test]
    fn fit_b10_population_is_monotone_in_target() {
        let sigma = CrossSection(1e-8);
        let weak = fit_b10_population(sigma, 10.0);
        let strong = fit_b10_population(sigma, 1.5);
        // A lower HE/thermal ratio means MORE boron.
        assert!(strong > weak, "strong {strong} weak {weak}");
    }

    #[test]
    #[should_panic(expected = "below the floor")]
    fn unreachable_ratio_is_rejected() {
        // ChipIR's own thermal tail sets a floor around ~0.05; a target of
        // 0.01 is unreachable no matter how much boron is added.
        let _ = fit_b10_population(CrossSection(1e-8), 0.01);
    }

    #[test]
    fn beam_classification() {
        assert!(is_thermal_beam(&rotax_reference()));
        assert!(!is_thermal_beam(&chipir_reference()));
    }

    #[test]
    fn technology_metadata_is_faithful() {
        assert_eq!(xeon_phi().technology().node_nm, 22);
        assert_eq!(nvidia_k20().technology().transistor, TransistorKind::PlanarCmos);
        assert_eq!(nvidia_titanx().technology().transistor, TransistorKind::FinFet);
        assert_eq!(nvidia_titanv().technology().node_nm, 12);
        assert_eq!(amd_apu_cpu().technology().foundry, "GlobalFoundries");
        assert_eq!(xilinx_zynq().vendor(), "Xilinx");
    }

    #[test]
    fn device_kinds_are_distinct_for_apu_configs() {
        assert_ne!(amd_apu_cpu().kind(), amd_apu_gpu().kind());
        assert_ne!(amd_apu_gpu().kind(), amd_apu_hybrid().kind());
    }
}
