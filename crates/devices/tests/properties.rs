//! Property-based device-model invariants.

use proptest::prelude::*;
use tn_devices::catalog::{all_compute_devices, fit_b10_population};
use tn_devices::ddr::{classify, CorrectLoop, DdrModule};
use tn_devices::fpga::ConfigMemory;
use tn_devices::response::{ErrorClass, SensitiveRegion};
use tn_physics::units::{CrossSection, Energy, Flux, Seconds};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn region_cross_section_is_monotone_below_threshold(
        b10 in 1e8f64..1e14,
        e1 in 1e-4f64..1e3,
        factor in 1.5f64..100.0,
    ) {
        // In the capture-dominated range (everything below the 0.2 MeV
        // fast-recoil threshold), lower energy = bigger sigma.
        let region = SensitiveRegion::new(CrossSection(1e-9), b10);
        let lo = region.cross_section_at(Energy(e1));
        let hi = region.cross_section_at(Energy(e1 * factor));
        prop_assert!(lo.value() >= hi.value());
    }

    #[test]
    fn fast_region_saturates(
        sigma_exp in -10.0f64..-7.0,
        e_mev in 2.0f64..1000.0,
    ) {
        let sigma = CrossSection(10f64.powf(sigma_exp));
        let region = SensitiveRegion::boron_free(sigma);
        let at_e = region.cross_section_at(Energy::from_mev(e_mev));
        prop_assert!((at_e.value() - sigma.value()).abs() < 1e-12 * sigma.value());
    }

    #[test]
    fn b10_fit_round_trips_through_the_device(
        target in 1.2f64..15.0,
    ) {
        let sigma = CrossSection(1e-8);
        let b10 = fit_b10_population(sigma, target);
        let again = fit_b10_population(sigma, target);
        prop_assert_eq!(b10, again, "fit must be deterministic");
        prop_assert!(b10.is_finite() && b10 > 0.0);
    }

    #[test]
    fn catalog_devices_have_consistent_due_regions(seed in 0u64..8) {
        let device = &all_compute_devices()[seed as usize];
        let due = device.response().region(ErrorClass::Due);
        let sdc = device.response().region(ErrorClass::Sdc);
        // Control logic is a minority of the die: DUE fast sigma below
        // SDC fast sigma for every catalog device.
        prop_assert!(due.fast_saturated().value() <= sdc.fast_saturated().value());
    }

    #[test]
    fn correct_loop_error_count_scales_with_fluence(
        seed in 0u64..50,
    ) {
        let beam = Flux(2.72e6);
        let short = {
            let mut t = CorrectLoop::new(DdrModule::ddr3(), seed);
            classify(&t.run(beam, Seconds(1000.0), Seconds(10.0))).total()
        };
        let long = {
            let mut t = CorrectLoop::new(DdrModule::ddr3(), seed);
            classify(&t.run(beam, Seconds(16_000.0), Seconds(10.0))).total()
        };
        prop_assert!(long > short, "short {short}, long {long}");
    }

    #[test]
    fn classified_totals_never_exceed_generated_events(
        seed in 0u64..30,
        flux_exp in 5.0f64..7.0,
    ) {
        let beam = Flux(10f64.powf(flux_exp));
        let mut t = CorrectLoop::new(DdrModule::ddr4(), seed);
        let log = t.run(beam, Seconds(2000.0), Seconds(10.0));
        let classified = classify(&log);
        // Expected events = sigma * capacity * fluence; allow 5x headroom
        // for Poisson upside on small numbers.
        let expected =
            DdrModule::ddr4().thermal_event_rate(beam) * 2000.0;
        prop_assert!(
            (classified.total() as f64) < 5.0 * expected + 20.0,
            "classified {} vs expected {expected}",
            classified.total()
        );
    }

    #[test]
    fn fpga_upsets_scale_with_flux(seed in 0u64..50) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut low = ConfigMemory::zynq7000(1e-15);
        let mut high = ConfigMemory::zynq7000(1e-15);
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        low.expose(Flux(1e5), Seconds(1000.0), &mut rng1);
        high.expose(Flux(1e7), Seconds(1000.0), &mut rng2);
        prop_assert!(high.flipped_total() > low.flipped_total());
    }
}
