//! Property-style device-model invariants, driven by fixed-seed `tn_rng`
//! generator loops.

use tn_rng::Rng;
use tn_devices::catalog::{all_compute_devices, fit_b10_population};
use tn_devices::ddr::{classify, CorrectLoop, DdrModule};
use tn_devices::fpga::ConfigMemory;
use tn_devices::response::{ErrorClass, SensitiveRegion};
use tn_physics::units::{CrossSection, Energy, Flux, Seconds};

const CASES: usize = 24;

fn log_uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    10f64.powf(rng.gen_range(lo.log10()..hi.log10()))
}

#[test]
fn region_cross_section_is_monotone_below_threshold() {
    // In the capture-dominated range (everything below the 0.2 MeV
    // fast-recoil threshold), lower energy = bigger sigma.
    let mut rng = Rng::seed_from_u64(0xd01);
    for _ in 0..CASES {
        let b10 = log_uniform(&mut rng, 1e8, 1e14);
        let e1 = log_uniform(&mut rng, 1e-4, 1e3);
        let factor = rng.gen_range(1.5..100.0);
        let region = SensitiveRegion::new(CrossSection(1e-9), b10);
        let lo = region.cross_section_at(Energy(e1));
        let hi = region.cross_section_at(Energy(e1 * factor));
        assert!(lo.value() >= hi.value());
    }
}

#[test]
fn fast_region_saturates() {
    let mut rng = Rng::seed_from_u64(0xd02);
    for _ in 0..CASES {
        let sigma_exp = rng.gen_range(-10.0..-7.0);
        let e_mev = rng.gen_range(2.0..1000.0);
        let sigma = CrossSection(10f64.powf(sigma_exp));
        let region = SensitiveRegion::boron_free(sigma);
        let at_e = region.cross_section_at(Energy::from_mev(e_mev));
        assert!((at_e.value() - sigma.value()).abs() < 1e-12 * sigma.value());
    }
}

#[test]
fn b10_fit_round_trips_through_the_device() {
    let mut rng = Rng::seed_from_u64(0xd03);
    for _ in 0..CASES {
        let target = rng.gen_range(1.2..15.0);
        let sigma = CrossSection(1e-8);
        let b10 = fit_b10_population(sigma, target);
        let again = fit_b10_population(sigma, target);
        assert_eq!(b10, again, "fit must be deterministic");
        assert!(b10.is_finite() && b10 > 0.0);
    }
}

#[test]
fn catalog_devices_have_consistent_due_regions() {
    for device in &all_compute_devices() {
        let due = device.response().region(ErrorClass::Due);
        let sdc = device.response().region(ErrorClass::Sdc);
        // Control logic is a minority of the die: DUE fast sigma below
        // SDC fast sigma for every catalog device.
        assert!(due.fast_saturated().value() <= sdc.fast_saturated().value());
    }
}

#[test]
fn correct_loop_error_count_scales_with_fluence() {
    let mut rng = Rng::seed_from_u64(0xd04);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..50);
        let beam = Flux(2.72e6);
        let short = {
            let mut t = CorrectLoop::new(DdrModule::ddr3(), seed);
            classify(&t.run(beam, Seconds(1000.0), Seconds(10.0))).total()
        };
        let long = {
            let mut t = CorrectLoop::new(DdrModule::ddr3(), seed);
            classify(&t.run(beam, Seconds(16_000.0), Seconds(10.0))).total()
        };
        assert!(long > short, "short {short}, long {long}");
    }
}

#[test]
fn classified_totals_never_exceed_generated_events() {
    let mut rng = Rng::seed_from_u64(0xd05);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..30);
        let flux_exp = rng.gen_range(5.0..7.0);
        let beam = Flux(10f64.powf(flux_exp));
        let mut t = CorrectLoop::new(DdrModule::ddr4(), seed);
        let log = t.run(beam, Seconds(2000.0), Seconds(10.0));
        let classified = classify(&log);
        // Expected events = sigma * capacity * fluence; allow 5x headroom
        // for Poisson upside on small numbers.
        let expected = DdrModule::ddr4().thermal_event_rate(beam) * 2000.0;
        assert!(
            (classified.total() as f64) < 5.0 * expected + 20.0,
            "classified {} vs expected {expected}",
            classified.total()
        );
    }
}

#[test]
fn fpga_upsets_scale_with_flux() {
    let mut rng = Rng::seed_from_u64(0xd06);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..50);
        let mut low = ConfigMemory::zynq7000(1e-15);
        let mut high = ConfigMemory::zynq7000(1e-15);
        let mut rng1 = Rng::seed_from_u64(seed);
        let mut rng2 = Rng::seed_from_u64(seed);
        low.expose(Flux(1e5), Seconds(1000.0), &mut rng1);
        high.expose(Flux(1e7), Seconds(1000.0), &mut rng2);
        assert!(high.flipped_total() > low.flipped_total());
    }
}
