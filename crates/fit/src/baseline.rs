//! The Weulersse et al. (2018) memory-only baseline the paper compares
//! against: thermal-to-high-energy sensitivity ratios between 0.03× and
//! 1.4× measured on SRAMs, configuration logic blocks and caches with
//! thermal neutrons, 60 MeV protons and 14 MeV neutrons.
//!
//! The paper's criticism — and the reason it ran *whole devices executing
//! codes* instead — is that memory-only numbers miss program masking and
//! say nothing about SDC-vs-DUE structure. This module encodes the
//! baseline so benches can show both where our device models fall inside
//! the published band and what the baseline cannot express.

use tn_devices::response::ErrorClass;
use tn_devices::Device;

/// One memory technology point from Weulersse et al.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPoint {
    /// Memory description.
    pub memory: &'static str,
    /// Thermal sensitivity relative to the high-energy one
    /// (σ_thermal / σ_HE).
    pub thermal_over_he: f64,
}

/// The published baseline band.
#[derive(Debug, Clone, PartialEq)]
pub struct WeulersseBaseline {
    points: Vec<MemoryPoint>,
}

impl WeulersseBaseline {
    /// The representative points spanning the published 0.03×–1.4× band.
    pub fn published() -> Self {
        Self {
            points: vec![
                MemoryPoint { memory: "65 nm SRAM", thermal_over_he: 1.4 },
                MemoryPoint { memory: "90 nm SRAM", thermal_over_he: 0.6 },
                MemoryPoint { memory: "FPGA CLB array", thermal_over_he: 0.25 },
                MemoryPoint { memory: "embedded cache", thermal_over_he: 0.11 },
                MemoryPoint { memory: "40 nm SRAM (low-B)", thermal_over_he: 0.03 },
            ],
        }
    }

    /// The points.
    pub fn points(&self) -> &[MemoryPoint] {
        &self.points
    }

    /// The published band `(min, max)` of thermal/HE ratios.
    pub fn band(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in &self.points {
            lo = lo.min(p.thermal_over_he);
            hi = hi.max(p.thermal_over_he);
        }
        (lo, hi)
    }

    /// Whether a device's thermal/HE sensitivity ratio (for a class) falls
    /// inside the published memory band.
    pub fn contains_device(&self, device: &Device, class: ErrorClass) -> bool {
        let ratio = 1.0 / device.analytic_ratio(class);
        let (lo, hi) = self.band();
        (lo..=hi).contains(&ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_devices::catalog;

    #[test]
    fn band_matches_publication() {
        let (lo, hi) = WeulersseBaseline::published().band();
        assert!((lo - 0.03).abs() < 1e-12);
        assert!((hi - 1.4).abs() < 1e-12);
    }

    #[test]
    fn most_compute_devices_fall_inside_the_memory_band() {
        // The paper's devices have thermal/HE sensitivity ratios between
        // ~0.1 (Xeon Phi) and ~0.85 (APU DUE) — inside Weulersse's band,
        // which is part of why the baseline looked plausible.
        let baseline = WeulersseBaseline::published();
        let inside = catalog::all_compute_devices()
            .iter()
            .filter(|d| baseline.contains_device(d, ErrorClass::Sdc))
            .count();
        assert!(inside >= 6, "only {inside}/8 devices inside the band");
    }

    #[test]
    fn fpga_due_is_outside_any_memory_band() {
        // No DUE at all (infinite HE/thermal ratio) — a structure the
        // memory-only baseline cannot express.
        let baseline = WeulersseBaseline::published();
        let fpga = catalog::xilinx_zynq();
        assert!(!baseline.contains_device(&fpga, ErrorClass::Due));
    }

    #[test]
    fn points_are_named() {
        for p in WeulersseBaseline::published().points() {
            assert!(!p.memory.is_empty());
        }
    }
}
