//! # tn-fit — failure-in-time rate engine
//!
//! Converts beam-measured cross sections into field error rates:
//! FIT = σ × Φ × 10⁹ h, split by neutron population (high-energy vs
//! thermal) and by failure mode (SDC vs DUE), for any
//! [`tn_environment::Environment`]. Campaign outputs from the beamline
//! crate plug in directly (same quoting conventions).
//!
//! This is where the paper's headline risk numbers are produced — the
//! thermal-neutron *share* of the total FIT rate (up to ~40 % for the
//! devices with the most ¹⁰B), its growth with altitude, with concrete
//! and cooling water, and on rainy days — plus the extension analyses:
//! the Top-10-supercomputers DDR FIT projection and the Weulersse et al.
//! memory-only baseline comparison.
//!
//! ## Example
//!
//! ```
//! use tn_fit::DeviceFit;
//! use tn_physics::units::CrossSection;
//! use tn_environment::{Environment, Location, Surroundings, Weather};
//!
//! let env = Environment::new(Location::leadville(), Weather::Sunny, Surroundings::hpc_machine_room());
//! let fit = DeviceFit::from_cross_sections(
//!     CrossSection(2e-9), // high-energy SDC cross section
//!     CrossSection(1e-9), // thermal SDC cross section
//!     &env,
//! );
//! assert!(fit.thermal_share() > 0.0 && fit.thermal_share() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod baseline;
pub mod checkpoint;
pub mod hpc;
pub mod mission;
pub mod rate;
pub mod trend;

pub use baseline::WeulersseBaseline;
pub use checkpoint::CheckpointPlan;
pub use mission::{MissionLeg, MissionProfile, SafetyBudget};
pub use hpc::{Supercomputer, TOP10_2019};
pub use rate::{DeviceFit, FitBreakdown};
pub use trend::{analyse as analyse_trend, pearson, TrendReport};
