//! Automotive mission profiles: the paper's motivation made quantitative.
//!
//! An autonomous vehicle's detection GPU spends its operating life across
//! a mix of environments (weather, road, altitude). A mission profile
//! weights device FIT rates over that mix and compares the result against
//! an ISO 26262-style random-hardware-failure budget, showing how much of
//! the budget thermal neutrons silently consume — and how it moves on a
//! rainy day.

use crate::rate::DeviceFit;
use tn_environment::Environment;
use tn_physics::units::{CrossSection, Fit};

/// One leg of a mission profile: an environment and the fraction of
/// operating time spent in it.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionLeg {
    /// Label for reports.
    pub label: String,
    /// The environment of this leg.
    pub environment: Environment,
    /// Fraction of operating time (all legs must sum to 1).
    pub fraction: f64,
}

/// A time-weighted mix of environments.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionProfile {
    legs: Vec<MissionLeg>,
}

impl MissionProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `legs` is empty, any fraction is negative, or the
    /// fractions do not sum to 1 within 1e-6.
    pub fn new(legs: Vec<MissionLeg>) -> Self {
        assert!(!legs.is_empty(), "profile needs at least one leg");
        assert!(
            legs.iter().all(|l| l.fraction >= 0.0),
            "fractions must be non-negative"
        );
        let total: f64 = legs.iter().map(|l| l.fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {total}"
        );
        Self { legs }
    }

    /// The legs.
    pub fn legs(&self) -> &[MissionLeg] {
        &self.legs
    }

    /// Mission-averaged FIT for a device with the given beam-measured
    /// cross sections.
    pub fn average_fit(&self, sigma_he: CrossSection, sigma_th: CrossSection) -> DeviceFit {
        let mut he = 0.0;
        let mut th = 0.0;
        for leg in &self.legs {
            let fit = DeviceFit::from_cross_sections(sigma_he, sigma_th, &leg.environment);
            he += leg.fraction * fit.high_energy.value();
            th += leg.fraction * fit.thermal.value();
        }
        DeviceFit {
            high_energy: Fit(he),
            thermal: Fit(th),
        }
    }

    /// Per-leg FIT totals, for reporting.
    pub fn per_leg_fit(
        &self,
        sigma_he: CrossSection,
        sigma_th: CrossSection,
    ) -> Vec<(String, DeviceFit)> {
        self.legs
            .iter()
            .map(|leg| {
                (
                    leg.label.clone(),
                    DeviceFit::from_cross_sections(sigma_he, sigma_th, &leg.environment),
                )
            })
            .collect()
    }
}

/// An ISO 26262-style random-hardware-failure budget check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyBudget {
    /// Maximum tolerated total FIT for the element.
    pub budget: Fit,
}

impl SafetyBudget {
    /// The conventional ASIL-D random-hardware-failure target
    /// (< 10 FIT for the item; an element gets a slice of it).
    pub fn asil_d_element(fit: f64) -> Self {
        Self { budget: Fit(fit) }
    }

    /// Fraction of the budget a device consumes under a mission profile.
    pub fn utilisation(&self, fit: DeviceFit) -> f64 {
        fit.total().value() / self.budget.value()
    }

    /// Whether the device fits the budget.
    pub fn is_met(&self, fit: DeviceFit) -> bool {
        self.utilisation(fit) <= 1.0
    }

    /// Fraction of the *budget* silently consumed by thermal neutrons —
    /// the quantity an integrator who ignored thermals would have
    /// unknowingly spent.
    pub fn hidden_thermal_utilisation(&self, fit: DeviceFit) -> f64 {
        fit.thermal.value() / self.budget.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_environment::{Location, Vehicle, Weather};

    fn commuter_profile() -> MissionProfile {
        let car = Vehicle::family_car();
        let denver = Location::new("Denver, CO", 1609.0, 1.0);
        MissionProfile::new(vec![
            MissionLeg {
                label: "dry commute".into(),
                environment: car.environment(denver.clone(), Weather::Sunny),
                fraction: 0.8,
            },
            MissionLeg {
                label: "rain".into(),
                environment: car.environment(denver.clone(), Weather::Rainy),
                fraction: 0.15,
            },
            MissionLeg {
                label: "thunderstorm".into(),
                environment: car.environment(denver, Weather::Thunderstorm),
                fraction: 0.05,
            },
        ])
    }

    #[test]
    fn average_fit_is_between_leg_extremes() {
        let p = commuter_profile();
        let (he, th) = (CrossSection(2e-9), CrossSection(1e-9));
        let avg = p.average_fit(he, th).total().value();
        let legs = p.per_leg_fit(he, th);
        let min = legs.iter().map(|(_, f)| f.total().value()).fold(f64::MAX, f64::min);
        let max = legs.iter().map(|(_, f)| f.total().value()).fold(f64::MIN, f64::max);
        assert!(min <= avg && avg <= max, "avg {avg} outside [{min}, {max}]");
    }

    #[test]
    fn rain_legs_raise_the_average_thermal_share() {
        let (he, th) = (CrossSection(2e-9), CrossSection(1e-9));
        let mixed = commuter_profile().average_fit(he, th);
        let car = Vehicle::family_car();
        let dry_only = MissionProfile::new(vec![MissionLeg {
            label: "dry".into(),
            environment: car.environment(Location::new("Denver, CO", 1609.0, 1.0), Weather::Sunny),
            fraction: 1.0,
        }])
        .average_fit(he, th);
        assert!(mixed.thermal_share() > dry_only.thermal_share());
    }

    #[test]
    fn budget_arithmetic() {
        let budget = SafetyBudget::asil_d_element(10.0);
        let fit = DeviceFit {
            high_energy: Fit(6.0),
            thermal: Fit(3.0),
        };
        assert!((budget.utilisation(fit) - 0.9).abs() < 1e-12);
        assert!(budget.is_met(fit));
        assert!((budget.hidden_thermal_utilisation(fit) - 0.3).abs() < 1e-12);
        let over = DeviceFit {
            high_energy: Fit(8.0),
            thermal: Fit(4.0),
        };
        assert!(!budget.is_met(over));
    }

    #[test]
    fn thermal_can_break_an_otherwise_met_budget() {
        // The paper's warning, in budget form: HE-only analysis says ok,
        // the thermal share blows it.
        let budget = SafetyBudget::asil_d_element(10.0);
        let fit = DeviceFit {
            high_energy: Fit(9.0),
            thermal: Fit(3.5),
        };
        let he_only = DeviceFit {
            high_energy: fit.high_energy,
            thermal: Fit(0.0),
        };
        assert!(budget.is_met(he_only));
        assert!(!budget.is_met(fit));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn fractions_must_sum_to_one() {
        let car = Vehicle::family_car();
        let _ = MissionProfile::new(vec![MissionLeg {
            label: "x".into(),
            environment: car.environment(Location::new_york(), Weather::Sunny),
            fraction: 0.5,
        }]);
    }

    #[test]
    #[should_panic(expected = "at least one leg")]
    fn empty_profile_rejected() {
        let _ = MissionProfile::new(vec![]);
    }
}
