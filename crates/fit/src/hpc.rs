//! Fleet-scale DDR FIT projection for the Top-10 supercomputers — the
//! extension analysis sketched by the paper's (companion-figure) "HPC_FIT"
//! plot: per-site thermal-neutron error rates of the machines' entire
//! memory populations, driven by each site's altitude and machine-room
//! surroundings.

use tn_devices::ddr::{DdrGeneration, DdrModule};
use tn_environment::{Environment, Location, Surroundings, Weather};
use tn_physics::units::{CrossSection, Fit};

/// One supercomputer site (June 2019 Top500 snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct Supercomputer {
    /// Machine name.
    pub name: &'static str,
    /// Site label.
    pub site: &'static str,
    /// Site altitude in metres.
    pub altitude_m: f64,
    /// Total main-memory capacity in TB.
    pub memory_tb: f64,
    /// Dominant DRAM generation installed.
    pub ddr: DdrGeneration,
    /// Whether the machine is liquid-cooled (adds the +24 % water boost
    /// on top of the universal concrete slab).
    pub liquid_cooled: bool,
}

/// The June 2019 Top-10 list with site parameters.
pub const TOP10_2019: [Supercomputer; 10] = [
    Supercomputer { name: "Summit", site: "Oak Ridge, USA", altitude_m: 266.0, memory_tb: 2_801.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "Sierra", site: "Livermore, USA", altitude_m: 171.0, memory_tb: 1_382.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "Sunway TaihuLight", site: "Wuxi, China", altitude_m: 5.0, memory_tb: 1_310.0, ddr: DdrGeneration::Ddr3, liquid_cooled: true },
    Supercomputer { name: "Tianhe-2A", site: "Guangzhou, China", altitude_m: 21.0, memory_tb: 2_277.0, ddr: DdrGeneration::Ddr3, liquid_cooled: true },
    Supercomputer { name: "Frontera", site: "Austin, USA", altitude_m: 149.0, memory_tb: 1_537.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "Piz Daint", site: "Lugano, Switzerland", altitude_m: 273.0, memory_tb: 365.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "Trinity", site: "Los Alamos, USA", altitude_m: 2_231.0, memory_tb: 2_070.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "AI Bridging Cloud (ABCI)", site: "Tokyo, Japan", altitude_m: 10.0, memory_tb: 417.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "SuperMUC-NG", site: "Garching, Germany", altitude_m: 482.0, memory_tb: 719.0, ddr: DdrGeneration::Ddr4, liquid_cooled: true },
    Supercomputer { name: "Lassen", site: "Livermore, USA", altitude_m: 171.0, memory_tb: 253.0, ddr: DdrGeneration::Ddr4, liquid_cooled: false },
];

impl Supercomputer {
    /// The machine's environment: its altitude, a machine room with a
    /// concrete slab, plus cooling water if liquid-cooled.
    pub fn environment(&self) -> Environment {
        let surroundings = if self.liquid_cooled {
            Surroundings::hpc_machine_room()
        } else {
            Surroundings::concrete_floor()
        };
        Environment::new(
            Location::new(self.site, self.altitude_m, 1.0),
            Weather::Sunny,
            surroundings,
        )
    }

    /// The DDR module model matching the installed generation.
    pub fn ddr_module(&self) -> DdrModule {
        match self.ddr {
            DdrGeneration::Ddr3 => DdrModule::ddr3(),
            DdrGeneration::Ddr4 => DdrModule::ddr4(),
        }
    }

    /// Installed memory in Gbit.
    pub fn memory_gbit(&self) -> f64 {
        self.memory_tb * 8.0 * 1000.0 // TB -> Gbit (decimal TB)
    }

    /// Whole-fleet thermal FIT of the machine's memory: per-Gbit thermal
    /// cross section × capacity × the site's thermal flux.
    pub fn memory_thermal_fit(&self) -> Fit {
        let sigma = CrossSection(
            self.ddr_module().thermal_sigma_per_gbit().value() * self.memory_gbit(),
        );
        sigma.fit_in(self.environment().thermal_flux())
    }

    /// Expected thermal-neutron memory errors per day of operation.
    pub fn memory_errors_per_day(&self) -> f64 {
        // FIT = errors / 1e9 device-hours; one machine-day = 24 h.
        self.memory_thermal_fit().value() * 24.0 / 1e9
    }

    /// The same projection on a stormy day (thermal flux doubled).
    pub fn memory_thermal_fit_in_rain(&self) -> Fit {
        let env = self.environment().with_weather(Weather::Thunderstorm);
        let sigma = CrossSection(
            self.ddr_module().thermal_sigma_per_gbit().value() * self.memory_gbit(),
        );
        sigma.fit_in(env.thermal_flux())
    }
}

/// Ranks the Top-10 by memory thermal FIT (descending) — the order the
/// HPC_FIT bar chart paints.
pub fn ranked_by_thermal_fit() -> Vec<(&'static str, Fit)> {
    let mut rows: Vec<(&'static str, Fit)> = TOP10_2019
        .iter()
        .map(|s| (s.name, s.memory_thermal_fit()))
        .collect();
    rows.sort_by(|a, b| b.1.value().total_cmp(&a.1.value()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_has_ten_machines() {
        assert_eq!(TOP10_2019.len(), 10);
    }

    #[test]
    fn ddr3_giants_and_trinity_top_the_chart() {
        // Two effects dominate the ranking: the 10× DDR3 per-Gbit
        // sensitivity (Tianhe-2A, TaihuLight) and Trinity's ~6× altitude
        // flux at Los Alamos. Tianhe-2A (2.3 PB of DDR3) must lead, and
        // Trinity must rank in the top three despite having an order of
        // magnitude less sensitive DRAM than the Chinese systems.
        let ranked = ranked_by_thermal_fit();
        assert_eq!(ranked[0].0, "Tianhe-2A", "ranking: {ranked:?}");
        let trinity_rank = ranked.iter().position(|r| r.0 == "Trinity").unwrap();
        assert!(trinity_rank <= 2, "Trinity ranked {trinity_rank}: {ranked:?}");
        // Altitude beats memory size: Summit has 35 % more DDR4 than
        // Trinity but a tenth of the flux.
        let summit_rank = ranked.iter().position(|r| r.0 == "Summit").unwrap();
        assert!(trinity_rank < summit_rank);
    }

    #[test]
    fn ddr3_machines_punch_above_their_weight() {
        // TaihuLight (DDR3, 1.31 PB, sea level) must beat Summit (DDR4,
        // 2.8 PB, 266 m): the 10x per-Gbit sensitivity wins.
        let taihu = &TOP10_2019[2];
        let summit = &TOP10_2019[0];
        assert!(taihu.memory_thermal_fit().value() > summit.memory_thermal_fit().value());
    }

    #[test]
    fn rain_doubles_the_projection() {
        let trinity = &TOP10_2019[6];
        let ratio = trinity.memory_thermal_fit_in_rain() / trinity.memory_thermal_fit();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn errors_per_day_are_operationally_plausible() {
        // Fleet-scale DRAM error rates are "some per day", not thousands.
        for machine in &TOP10_2019 {
            let per_day = machine.memory_errors_per_day();
            assert!(
                (0.001..200.0).contains(&per_day),
                "{}: {per_day} errors/day",
                machine.name
            );
        }
    }

    #[test]
    fn air_cooled_machine_lacks_the_water_boost() {
        let lassen = &TOP10_2019[9];
        assert!(!lassen.environment().surroundings().has_water_cooling());
        let sierra = &TOP10_2019[1];
        assert!(sierra.environment().surroundings().has_water_cooling());
    }

    #[test]
    fn memory_conversion() {
        assert_eq!(TOP10_2019[9].memory_gbit(), 253.0 * 8000.0);
    }
}
