//! Technology-trend analysis: the paper's claim that "¹⁰B presence does
//! not depend on the technology node but on the quality of the
//! manufacturing process (smaller transistors will have less Boron, but
//! also less Silicon…)".
//!
//! Quantified two ways over the device catalog: the Pearson correlation
//! between feature size and thermal-relative sensitivity (weak), and the
//! spread *between foundries* at the same node (large) — process quality,
//! not geometry, is the variable.

use std::collections::BTreeMap;
use tn_devices::response::ErrorClass;
use tn_devices::Device;

/// Pearson correlation coefficient of two equal-length samples.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Thermal-relative sensitivity of a device: σ_thermal/σ_HE for SDCs
/// (the inverse of the Figure-5 ratio).
pub fn thermal_relative_sensitivity(device: &Device) -> f64 {
    1.0 / device.analytic_ratio(ErrorClass::Sdc)
}

/// Summary of the node-vs-boron question over a device set.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Pearson r between node (nm) and thermal-relative sensitivity.
    pub node_correlation: f64,
    /// Per-foundry mean thermal-relative sensitivity.
    pub foundry_means: Vec<(String, f64)>,
    /// Max/min ratio across foundries *at the same node* (28 nm), the
    /// paper's strongest evidence that process beats geometry.
    pub same_node_spread: Option<f64>,
}

/// Analyses a device set.
///
/// # Panics
///
/// Panics if fewer than two devices are given.
pub fn analyse(devices: &[Device]) -> TrendReport {
    assert!(devices.len() >= 2, "need at least two devices");
    let nodes: Vec<f64> = devices.iter().map(|d| d.technology().node_nm as f64).collect();
    let sens: Vec<f64> = devices.iter().map(thermal_relative_sensitivity).collect();
    let node_correlation = pearson(&nodes, &sens);

    let mut by_foundry: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for (d, &s) in devices.iter().zip(&sens) {
        by_foundry.entry(d.technology().foundry).or_default().push(s);
    }
    let foundry_means = by_foundry
        .iter()
        .map(|(f, v)| (f.to_string(), v.iter().sum::<f64>() / v.len() as f64))
        .collect();

    // Same-node comparison: every 28 nm device across foundries.
    let at_28: Vec<f64> = devices
        .iter()
        .zip(&sens)
        .filter(|(d, _)| d.technology().node_nm == 28)
        .map(|(_, &s)| s)
        .collect();
    let same_node_spread = if at_28.len() >= 2 {
        let max = at_28.iter().copied().fold(f64::MIN, f64::max);
        let min = at_28.iter().copied().fold(f64::MAX, f64::min);
        Some(max / min)
    } else {
        None
    };

    TrendReport {
        node_correlation,
        foundry_means,
        same_node_spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_devices::catalog::all_compute_devices;

    #[test]
    fn pearson_of_perfect_line_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_rejected() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn node_does_not_explain_boron() {
        // The paper's claim on our catalog: node size is a weak predictor
        // of thermal sensitivity…
        let devices = all_compute_devices();
        let report = analyse(&devices);
        assert!(
            report.node_correlation.abs() < 0.6,
            "node correlation {}",
            report.node_correlation
        );
        // …while same-node (28 nm) devices from different processes spread
        // widely (K20 vs APU vs Zynq).
        let spread = report.same_node_spread.expect("three 28 nm devices");
        assert!(spread > 1.2, "28 nm spread {spread}");
    }

    #[test]
    fn intel_is_the_low_boron_foundry() {
        let report = analyse(&all_compute_devices());
        let intel = report
            .foundry_means
            .iter()
            .find(|(f, _)| f == "Intel")
            .map(|&(_, m)| m)
            .unwrap();
        for (foundry, mean) in &report.foundry_means {
            if foundry != "Intel" {
                assert!(
                    *mean > intel,
                    "{foundry} ({mean}) should exceed Intel ({intel})"
                );
            }
        }
    }
}
