//! FIT arithmetic: cross sections × environment fluxes, and the thermal
//! share of the total error rate.

use tn_environment::Environment;
use tn_physics::units::{CrossSection, Fit};

/// The high-energy and thermal FIT contributions of one error class
/// (SDC or DUE) for one device in one environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFit {
    /// FIT from the high-energy (>10 MeV) flux.
    pub high_energy: Fit,
    /// FIT from the thermal flux.
    pub thermal: Fit,
}

impl DeviceFit {
    /// Combines beam-measured cross sections with an environment.
    ///
    /// `sigma_he` is quoted against the >10 MeV flux (ChipIR convention),
    /// `sigma_th` against the thermal flux (ROTAX convention) — the same
    /// conventions the `tn-beamline` campaigns use, so their outputs plug in
    /// directly.
    pub fn from_cross_sections(
        sigma_he: CrossSection,
        sigma_th: CrossSection,
        env: &Environment,
    ) -> Self {
        let _span = tn_obs::span("fit.fold");
        Self {
            high_energy: sigma_he.fit_in(env.high_energy_flux()),
            thermal: sigma_th.fit_in(env.thermal_flux()),
        }
    }

    /// Total FIT.
    pub fn total(&self) -> Fit {
        self.high_energy + self.thermal
    }

    /// Fraction of the total FIT contributed by thermal neutrons — the
    /// number the paper's FIT chart reports per device/location.
    pub fn thermal_share(&self) -> f64 {
        let total = self.total().value();
        if total == 0.0 {
            0.0
        } else {
            self.thermal.value() / total
        }
    }

    /// How much the FIT rate is *underestimated* if thermal neutrons are
    /// ignored: `total / high_energy`.
    pub fn underestimation_factor(&self) -> f64 {
        if self.high_energy.value() == 0.0 {
            f64::INFINITY
        } else {
            self.total().value() / self.high_energy.value()
        }
    }
}

/// A labelled FIT table row (device × class × environment), used by the
/// report printers.
#[derive(Debug, Clone, PartialEq)]
pub struct FitBreakdown {
    /// Device name.
    pub device: String,
    /// Error class label ("SDC"/"DUE").
    pub class: String,
    /// Environment label.
    pub environment: String,
    /// The two contributions.
    pub fit: DeviceFit,
}

impl FitBreakdown {
    /// Builds a row.
    pub fn new(
        device: impl Into<String>,
        class: impl Into<String>,
        environment: impl Into<String>,
        fit: DeviceFit,
    ) -> Self {
        Self {
            device: device.into(),
            class: class.into(),
            environment: environment.into(),
            fit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_environment::{Location, Surroundings, Weather};

    fn nyc() -> Environment {
        Environment::nyc_reference()
    }

    #[test]
    fn fit_is_sigma_times_flux() {
        let fit = DeviceFit::from_cross_sections(CrossSection(1e-9), CrossSection(0.0), &nyc());
        // 1e-9 cm² × 13/3600 n/cm²/s × 3.6e12 s/10⁹h = 13 FIT.
        assert!((fit.high_energy.value() - 13.0 * 1e-9 * 1e9).abs() < 1e-6);
        assert_eq!(fit.thermal.value(), 0.0);
        assert_eq!(fit.thermal_share(), 0.0);
        assert_eq!(fit.underestimation_factor(), 1.0);
    }

    #[test]
    fn thermal_share_grows_with_machine_room_and_altitude() {
        let sigma_he = CrossSection(2e-9);
        let sigma_th = CrossSection(1e-9);
        let outdoor = DeviceFit::from_cross_sections(sigma_he, sigma_th, &nyc());
        let worst = DeviceFit::from_cross_sections(
            sigma_he,
            sigma_th,
            &Environment::leadville_machine_room(),
        );
        // Same altitude scaling applies to both populations, so the share
        // moves only through the surroundings factor.
        assert!(worst.thermal_share() > outdoor.thermal_share());
    }

    #[test]
    fn rain_doubles_only_the_thermal_part() {
        let sigma = CrossSection(1e-9);
        let sunny = DeviceFit::from_cross_sections(sigma, sigma, &nyc());
        let storm = DeviceFit::from_cross_sections(
            sigma,
            sigma,
            &nyc().with_weather(Weather::Thunderstorm),
        );
        assert_eq!(sunny.high_energy, storm.high_energy);
        assert!((storm.thermal.value() / sunny.thermal.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn underestimation_factor_matches_share() {
        let fit = DeviceFit {
            high_energy: Fit(60.0),
            thermal: Fit(40.0),
        };
        assert!((fit.thermal_share() - 0.4).abs() < 1e-12);
        assert!((fit.underestimation_factor() - 100.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_row_builds() {
        let fit = DeviceFit {
            high_energy: Fit(1.0),
            thermal: Fit(1.0),
        };
        let row = FitBreakdown::new("K20", "SDC", "NYC", fit);
        assert_eq!(row.device, "K20");
        assert_eq!(row.fit.thermal_share(), 0.5);
    }

    #[test]
    fn zero_he_cross_section_gives_infinite_underestimation() {
        let env = Environment::new(
            Location::new_york(),
            Weather::Sunny,
            Surroundings::outdoors(),
        );
        let fit = DeviceFit::from_cross_sections(CrossSection(0.0), CrossSection(1e-9), &env);
        assert!(fit.underestimation_factor().is_infinite());
        assert_eq!(fit.thermal_share(), 1.0);
    }
}
