//! Checkpoint-interval planning from DUE rates — the operational
//! consequence the paper sketches: "when supercomputer time is allocated,
//! the checkpoint frequency may need to consider weather conditions."
//!
//! Uses Young's first-order optimum t_c = √(2·δ·MTBF) and Daly's
//! higher-order refinement, with the MTBF derived from a fleet's DUE FIT
//! rate.

use tn_physics::units::{Fit, Seconds};

/// A machine (or fleet) whose DUE rate drives checkpoint planning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPlan {
    /// Aggregate DUE FIT across the nodes a job spans.
    pub due_fit: Fit,
    /// Time to write one checkpoint.
    pub checkpoint_cost: Seconds,
}

impl CheckpointPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if the FIT rate or checkpoint cost is not strictly
    /// positive.
    pub fn new(due_fit: Fit, checkpoint_cost: Seconds) -> Self {
        assert!(due_fit.value() > 0.0, "DUE FIT must be positive");
        assert!(
            checkpoint_cost.value() > 0.0,
            "checkpoint cost must be positive"
        );
        Self {
            due_fit,
            checkpoint_cost,
        }
    }

    /// Mean time between DUE failures.
    pub fn mtbf(&self) -> Seconds {
        // FIT = failures per 1e9 device-hours.
        Seconds(1e9 * 3600.0 / self.due_fit.value())
    }

    /// Young's optimal checkpoint interval √(2·δ·MTBF).
    pub fn young_interval(&self) -> Seconds {
        Seconds((2.0 * self.checkpoint_cost.value() * self.mtbf().value()).sqrt())
    }

    /// Daly's refined optimum
    /// δ·(√(2·MTBF/δ)·(1 + √(δ/(2·MTBF))/3) − 1) for δ < 2·MTBF,
    /// which reduces to Young's for small δ/MTBF.
    pub fn daly_interval(&self) -> Seconds {
        let delta = self.checkpoint_cost.value();
        let m = self.mtbf().value();
        if delta >= 2.0 * m {
            return Seconds(m);
        }
        let root = (2.0 * m / delta).sqrt();
        Seconds(delta * (root * (1.0 + (delta / (2.0 * m)).sqrt() / 3.0) - 1.0))
    }

    /// Fraction of machine time lost to checkpointing plus expected
    /// rework at interval `t` (first-order model).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not strictly positive.
    pub fn overhead_at(&self, t: Seconds) -> f64 {
        assert!(t.value() > 0.0, "interval must be positive");
        let delta = self.checkpoint_cost.value();
        let m = self.mtbf().value();
        delta / t.value() + (t.value() + delta) / (2.0 * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(fit: f64) -> CheckpointPlan {
        CheckpointPlan::new(Fit(fit), Seconds(120.0))
    }

    #[test]
    fn mtbf_from_fit() {
        // 1e6 FIT => 1e3 device-hours between failures.
        let p = plan(1e6);
        assert!((p.mtbf().as_hours() - 1e3).abs() < 1e-9);
    }

    #[test]
    fn young_matches_hand_calculation() {
        let p = plan(1e6);
        let expected = (2.0f64 * 120.0 * 1e3 * 3600.0).sqrt();
        assert!((p.young_interval().value() - expected).abs() < 1e-6);
    }

    #[test]
    fn daly_close_to_young_for_small_delta() {
        let p = plan(1e5);
        let young = p.young_interval().value();
        let daly = p.daly_interval().value();
        assert!((daly / young - 1.0).abs() < 0.05, "young {young}, daly {daly}");
    }

    #[test]
    fn higher_due_rate_means_shorter_interval() {
        // The paper's weather point: a thunderstorm can double the
        // thermal DUE rate, shrinking the optimal interval by ~1/sqrt(2)
        // for a thermal-dominated device.
        let sunny = plan(1e6).young_interval().value();
        let stormy = plan(2e6).young_interval().value();
        assert!((stormy / sunny - 1.0 / 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn optimal_interval_minimises_overhead() {
        let p = plan(1e6);
        let t_opt = p.young_interval();
        let at_opt = p.overhead_at(t_opt);
        assert!(at_opt < p.overhead_at(Seconds(t_opt.value() / 3.0)));
        assert!(at_opt < p.overhead_at(Seconds(t_opt.value() * 3.0)));
    }

    #[test]
    fn degenerate_huge_cost_clamps_to_mtbf() {
        let p = CheckpointPlan::new(Fit(1e9 * 3600.0 * 10.0), Seconds(1.0));
        // MTBF = 0.1 s < 2*delta: clamp path.
        assert!((p.daly_interval().value() - p.mtbf().value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_fit_rejected() {
        let _ = CheckpointPlan::new(Fit(0.0), Seconds(1.0));
    }
}
