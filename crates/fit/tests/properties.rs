//! Property-style FIT-engine invariants, driven by fixed-seed `tn_rng`
//! generator loops.

use tn_rng::Rng;
use tn_environment::{Environment, Location, Surroundings, Weather};
use tn_fit::checkpoint::CheckpointPlan;
use tn_fit::mission::{MissionLeg, MissionProfile};
use tn_fit::rate::DeviceFit;
use tn_fit::trend::pearson;
use tn_physics::units::{CrossSection, Fit, Seconds};

const CASES: usize = 32;

#[test]
fn fit_is_linear_in_cross_section() {
    let mut rng = Rng::seed_from_u64(0xf01);
    for _ in 0..CASES {
        let sigma_exp = rng.gen_range(-12.0..-7.0);
        let scale = rng.gen_range(1.5..100.0);
        let env = Environment::nyc_reference();
        let sigma = CrossSection(10f64.powf(sigma_exp));
        let a = DeviceFit::from_cross_sections(sigma, sigma, &env);
        let b = DeviceFit::from_cross_sections(sigma * scale, sigma * scale, &env);
        assert!((b.total().value() / a.total().value() - scale).abs() < 1e-9);
        // Scaling both cross sections together leaves the share alone.
        assert!((b.thermal_share() - a.thermal_share()).abs() < 1e-12);
    }
}

#[test]
fn thermal_share_is_bounded() {
    let mut rng = Rng::seed_from_u64(0xf02);
    for _ in 0..CASES {
        let he_exp = rng.gen_range(-12.0..-7.0);
        let th_exp = rng.gen_range(-12.0..-7.0);
        let altitude = rng.gen_range(0.0..4000.0);
        let env = Environment::new(
            Location::new("x", altitude, 1.0),
            Weather::Sunny,
            Surroundings::hpc_machine_room(),
        );
        let fit = DeviceFit::from_cross_sections(
            CrossSection(10f64.powf(he_exp)),
            CrossSection(10f64.powf(th_exp)),
            &env,
        );
        let share = fit.thermal_share();
        assert!((0.0..=1.0).contains(&share));
        assert!(fit.underestimation_factor() >= 1.0);
    }
}

#[test]
fn checkpoint_interval_scales_inverse_sqrt_of_fit() {
    let mut rng = Rng::seed_from_u64(0xf03);
    for _ in 0..CASES {
        let fit = 10f64.powf(rng.gen_range(4.0..8.0));
        let scale = rng.gen_range(1.5..20.0);
        let a = CheckpointPlan::new(Fit(fit), Seconds(60.0)).young_interval();
        let b = CheckpointPlan::new(Fit(fit * scale), Seconds(60.0)).young_interval();
        assert!((a.value() / b.value() - scale.sqrt()).abs() < 1e-9);
    }
}

#[test]
fn overhead_is_minimal_near_the_young_point() {
    let mut rng = Rng::seed_from_u64(0xf04);
    for _ in 0..CASES {
        let fit = 10f64.powf(rng.gen_range(4.0..7.0));
        let cost = rng.gen_range(10.0..600.0);
        let plan = CheckpointPlan::new(Fit(fit), Seconds(cost));
        let t = plan.young_interval();
        let at = plan.overhead_at(t);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(at <= plan.overhead_at(Seconds(t.value() * factor)) + 1e-12);
        }
    }
}

#[test]
fn single_leg_mission_equals_direct_fold() {
    let mut rng = Rng::seed_from_u64(0xf05);
    for _ in 0..CASES {
        let he_exp = rng.gen_range(-11.0..-8.0);
        let th_exp = rng.gen_range(-11.0..-8.0);
        let env = Environment::leadville_machine_room();
        let mission = MissionProfile::new(vec![MissionLeg {
            label: "only".into(),
            environment: env.clone(),
            fraction: 1.0,
        }]);
        let (he, th) = (
            CrossSection(10f64.powf(he_exp)),
            CrossSection(10f64.powf(th_exp)),
        );
        let direct = DeviceFit::from_cross_sections(he, th, &env);
        let averaged = mission.average_fit(he, th);
        assert!(
            (direct.total().value() - averaged.total().value()).abs()
                < 1e-9 * direct.total().value()
        );
    }
}

#[test]
fn pearson_is_scale_invariant() {
    // Affine transforms of either sample leave |r| unchanged.
    let mut rng = Rng::seed_from_u64(0xf06);
    for _ in 0..CASES {
        let a = rng.gen_range(-5.0..5.0);
        let b = rng.gen_range(0.1..10.0);
        let seed = rng.gen_range(0u64..100);
        let xs: Vec<f64> = (0..12).map(|i| ((i as f64) + (seed % 7) as f64).sin()).collect();
        let ys: Vec<f64> = (0..12).map(|i| ((i as f64) * 0.7).cos()).collect();
        let transformed: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let r1 = pearson(&xs, &ys);
        let r2 = pearson(&transformed, &ys);
        assert!((r1 - r2).abs() < 1e-9);
        assert!(r1.abs() <= 1.0 + 1e-12);
    }
}
