//! Surroundings of the device: the materials of a machine room (or a
//! vehicle) that moderate the fast cascade and raise the local thermal
//! field.
//!
//! Two layers of modelling are provided:
//!
//! * [`Surroundings`] — the calibrated additive boosts the paper reports
//!   (+20 % over a concrete slab, +24 % next to cooling water, +44 %
//!   combined);
//! * [`DataCenterRoom`] — a physical room description whose thermal boost
//!   is *derived* with Monte-Carlo moderation (`tn-transport`), used to
//!   validate that the calibrated numbers are physically sensible.

use tn_physics::units::{Energy, Flux, Length};
use tn_physics::Material;
use tn_transport::SlabEffect;

/// Thermal-flux boost of a large concrete slab (paper: "thermal neutron
/// rates may be as much as 20 % higher over a large slab of concrete").
pub const CONCRETE_BOOST: f64 = 0.20;

/// Thermal-flux boost of cooling water near the device (paper, Fig. 6:
/// "+24 %" measured by Tin-II with two inches of water).
pub const WATER_COOLING_BOOST: f64 = 0.24;

/// Materials around the device and their calibrated thermal boosts.
///
/// Boosts combine additively, matching the paper's arithmetic: concrete
/// (+20 %) and water cooling (+24 %) give "an overall increase of 44 % in
/// the thermal flux".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Surroundings {
    concrete_floor: bool,
    water_cooling: bool,
    /// Extra additive boost from any other moderators (walls, fuel tank,
    /// passengers, …).
    extra_boost: f64,
}

impl Surroundings {
    /// Open-air reference: no moderating materials nearby.
    pub fn outdoors() -> Self {
        Self::default()
    }

    /// Standing over a concrete slab (machine-room or parking-lot floor).
    pub fn concrete_floor() -> Self {
        Self {
            concrete_floor: true,
            ..Self::default()
        }
    }

    /// Next to liquid-cooling plumbing.
    pub fn water_cooled() -> Self {
        Self {
            water_cooling: true,
            ..Self::default()
        }
    }

    /// A modern liquid-cooled HPC machine room: concrete slab floor plus
    /// water loops — the paper's "+44 %" configuration.
    pub fn hpc_machine_room() -> Self {
        Self {
            concrete_floor: true,
            water_cooling: true,
            extra_boost: 0.0,
        }
    }

    /// Adds an extra additive boost (e.g. derived from a
    /// [`DataCenterRoom`] Monte-Carlo run or a vehicle model).
    ///
    /// # Panics
    ///
    /// Panics if `boost` is below −1 (a boost cannot remove more than the
    /// whole field).
    pub fn with_extra_boost(mut self, boost: f64) -> Self {
        assert!(boost >= -1.0, "boost below -100% is unphysical");
        self.extra_boost += boost;
        self
    }

    /// Whether a concrete slab is present.
    pub fn has_concrete_floor(&self) -> bool {
        self.concrete_floor
    }

    /// Whether cooling water is present.
    pub fn has_water_cooling(&self) -> bool {
        self.water_cooling
    }

    /// Total multiplier applied to the thermal flux.
    pub fn thermal_factor(&self) -> f64 {
        let mut boost = self.extra_boost;
        if self.concrete_floor {
            boost += CONCRETE_BOOST;
        }
        if self.water_cooling {
            boost += WATER_COOLING_BOOST;
        }
        (1.0 + boost).max(0.0)
    }
}

/// View factor coupling the concrete floor's moderated albedo into the
/// device position (solid angle of the floor as seen by a rack-mounted
/// device, after room-return losses).
pub const FLOOR_VIEW_FACTOR: f64 = 0.35;

/// View factor coupling the cooling loop's moderated emission into the
/// device (plumbing subtends a modest solid angle around a node).
pub const COOLING_VIEW_FACTOR: f64 = 0.20;

/// A physical machine-room description for deriving (rather than assuming)
/// the thermal boost by Monte-Carlo moderation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCenterRoom {
    floor: Material,
    floor_thickness: Length,
    cooling_water: Option<Length>,
    /// Ratio of the total ambient non-thermal (>0.5 eV, the whole cascade)
    /// flux to the ambient thermal flux arriving at the room. Ground-level
    /// fields are strongly fast-dominated: the thermal band carries only a
    /// few n/cm²/h while the cascade above the cadmium cut-off carries
    /// tens (Ziegler 1996; JESD89A).
    fast_to_thermal_ratio: f64,
}

impl DataCenterRoom {
    /// A representative room: 20 cm concrete slab, fast/thermal ambient
    /// ratio 5 (ground-level cascade), no liquid cooling.
    pub fn air_cooled() -> Self {
        Self {
            floor: Material::concrete(),
            floor_thickness: Length(20.0),
            cooling_water: None,
            fast_to_thermal_ratio: 15.0,
        }
    }

    /// The same room with two-inch water cooling loops near the device.
    pub fn liquid_cooled() -> Self {
        Self {
            cooling_water: Some(Length::from_inches(2.0)),
            ..Self::air_cooled()
        }
    }

    /// Overrides the ambient fast/thermal ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    pub fn with_fast_to_thermal_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "flux ratio must be positive");
        self.fast_to_thermal_ratio = ratio;
        self
    }

    /// Derives the additive thermal boost of the *cooling water* by
    /// Monte-Carlo moderation: the fraction of the ambient fast flux that
    /// the water slab converts into thermal neutrons reaching the device,
    /// minus nothing (the water sits beside the device, it does not screen
    /// the ambient thermal field).
    ///
    /// Returns 0 for an air-cooled room.
    pub fn derive_water_boost(&self, histories: u64, seed: u64) -> f64 {
        let Some(thickness) = self.cooling_water else {
            return 0.0;
        };
        let effect = SlabEffect::characterise(
            Material::water(),
            thickness,
            Energy::from_mev(1.0),
            histories,
            seed,
        );
        // Water beside the device adds moderated thermals without
        // attenuating the direct field.
        COOLING_VIEW_FACTOR * self.fast_to_thermal_ratio * effect.fast_to_thermal_yield
    }

    /// Derives the additive thermal boost of the concrete floor: the
    /// thermal albedo the slab returns from the fast flux raining onto it,
    /// diluted by the 2π solid angle below the device.
    pub fn derive_floor_boost(&self, histories: u64, seed: u64) -> f64 {
        let transport = tn_transport::Transport::new(tn_transport::SlabStack::single(
            self.floor.clone(),
            self.floor_thickness,
        ));
        let tally = transport.run_diffuse(Energy::from_mev(1.0), histories, seed);
        // Albedo thermals from below.
        FLOOR_VIEW_FACTOR * self.fast_to_thermal_ratio * tally.reflected_thermal_fraction()
    }

    /// Total derived thermal multiplier of the room.
    pub fn derive_thermal_factor(&self, histories: u64, seed: u64) -> f64 {
        1.0 + self.derive_floor_boost(histories, seed) + self.derive_water_boost(histories, seed ^ 0xabcd)
    }

    /// Ambient thermal flux entering the room, given an outdoor thermal
    /// flux (the room multiplies it by the derived factor).
    pub fn thermal_flux(&self, outdoor_thermal: Flux, histories: u64, seed: u64) -> Flux {
        outdoor_thermal * self.derive_thermal_factor(histories, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_boosts_match_paper() {
        assert!((Surroundings::concrete_floor().thermal_factor() - 1.20).abs() < 1e-12);
        assert!((Surroundings::water_cooled().thermal_factor() - 1.24).abs() < 1e-12);
        assert!((Surroundings::hpc_machine_room().thermal_factor() - 1.44).abs() < 1e-12);
        assert!((Surroundings::outdoors().thermal_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_boost_is_additive() {
        let s = Surroundings::concrete_floor().with_extra_boost(0.1);
        assert!((s.thermal_factor() - 1.30).abs() < 1e-12);
    }

    #[test]
    fn thermal_factor_never_negative() {
        let s = Surroundings::outdoors().with_extra_boost(-1.0);
        assert_eq!(s.thermal_factor(), 0.0);
    }

    #[test]
    #[should_panic(expected = "unphysical")]
    fn overlarge_negative_boost_rejected() {
        let _ = Surroundings::outdoors().with_extra_boost(-1.5);
    }

    #[test]
    fn accessors_report_configuration() {
        let s = Surroundings::hpc_machine_room();
        assert!(s.has_concrete_floor() && s.has_water_cooling());
    }

    #[test]
    fn derived_water_boost_is_in_the_paper_band() {
        // The MC-derived boost should land near the measured +24 %
        // (generous band: 10%..50% — it is a physics derivation, not a fit).
        let boost = DataCenterRoom::liquid_cooled().derive_water_boost(4000, 7);
        assert!(
            (0.10..0.50).contains(&boost),
            "derived water boost = {boost}"
        );
    }

    #[test]
    fn derived_floor_boost_is_in_the_paper_band() {
        let boost = DataCenterRoom::air_cooled().derive_floor_boost(4000, 9);
        assert!(
            (0.05..0.45).contains(&boost),
            "derived floor boost = {boost}"
        );
    }

    #[test]
    fn air_cooled_room_has_no_water_boost() {
        assert_eq!(DataCenterRoom::air_cooled().derive_water_boost(100, 1), 0.0);
    }

    #[test]
    fn liquid_cooled_room_is_hotter_than_air_cooled() {
        let air = DataCenterRoom::air_cooled().derive_thermal_factor(2000, 11);
        let wet = DataCenterRoom::liquid_cooled().derive_thermal_factor(2000, 11);
        assert!(wet > air);
    }

    #[test]
    fn room_multiplies_outdoor_flux() {
        let room = DataCenterRoom::air_cooled();
        let f = room.thermal_flux(Flux(1.0), 1000, 3);
        assert!(f.value() > 1.0);
    }
}
