//! Synthetic weather sequences: day-by-day weather for a site, so error
//! rates can be integrated over realistic operating periods rather than
//! a single condition — the paper's point that "when it rains the error
//! rate … can be significantly higher than during a sunny day" turned
//! into a forecastable quantity.

use crate::Weather;
use tn_rng::Rng;

/// A site's climate: how often each weather state occurs and how sticky
/// it is day over day (first-order Markov chain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Climate {
    /// Stationary probability of rain (split between rainy and
    /// thunderstorm days).
    pub wet_day_fraction: f64,
    /// Of wet days, the fraction that escalate to thunderstorms.
    pub storm_fraction: f64,
    /// Probability that tomorrow repeats today's wet/dry state.
    pub persistence: f64,
    /// Fraction of the year with snowpack (cold sites).
    pub snow_fraction: f64,
}

impl Climate {
    /// A high-desert site like Los Alamos: dry, monsoon bursts, winter
    /// snow.
    pub fn high_desert() -> Self {
        Self {
            wet_day_fraction: 0.15,
            storm_fraction: 0.4,
            persistence: 0.7,
            snow_fraction: 0.10,
        }
    }

    /// A temperate coastal site: frequent rain, few storms.
    pub fn temperate_coastal() -> Self {
        Self {
            wet_day_fraction: 0.35,
            storm_fraction: 0.15,
            persistence: 0.6,
            snow_fraction: 0.05,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn validate(&self) {
        for (label, p) in [
            ("wet_day_fraction", self.wet_day_fraction),
            ("storm_fraction", self.storm_fraction),
            ("persistence", self.persistence),
            ("snow_fraction", self.snow_fraction),
        ] {
            assert!((0.0..=1.0).contains(&p), "{label} = {p} not a probability");
        }
    }

    /// Draws a daily weather sequence of `days` days.
    pub fn synthesize(&self, days: usize, seed: u64) -> Vec<Weather> {
        self.validate();
        let mut rng = Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(days);
        let mut wet = rng.gen_f64() < self.wet_day_fraction;
        for _ in 0..days {
            // Persist or redraw the wet/dry state.
            if rng.gen_f64() >= self.persistence {
                wet = rng.gen_f64() < self.wet_day_fraction;
            }
            let weather = if rng.gen_f64() < self.snow_fraction {
                Weather::Snowpack
            } else if wet {
                if rng.gen_f64() < self.storm_fraction {
                    Weather::Thunderstorm
                } else {
                    Weather::Rainy
                }
            } else {
                Weather::Sunny
            };
            out.push(weather);
        }
        out
    }

    /// Long-run mean thermal-flux multiplier of this climate relative to
    /// permanent fair weather (analytic, no sampling).
    pub fn mean_thermal_factor(&self) -> f64 {
        self.validate();
        let dry = 1.0 - self.wet_day_fraction;
        let rain = self.wet_day_fraction * (1.0 - self.storm_fraction);
        let storm = self.wet_day_fraction * self.storm_fraction;
        // Snow overrides the wet/dry draw with probability snow_fraction.
        let base = dry * Weather::Sunny.thermal_factor()
            + rain * Weather::Rainy.thermal_factor()
            + storm * Weather::Thunderstorm.thermal_factor();
        (1.0 - self.snow_fraction) * base
            + self.snow_fraction * Weather::Snowpack.thermal_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let c = Climate::high_desert();
        assert_eq!(c.synthesize(365, 9), c.synthesize(365, 9));
        assert_ne!(c.synthesize(365, 9), c.synthesize(365, 10));
    }

    #[test]
    fn wet_day_fraction_is_respected() {
        let c = Climate::temperate_coastal();
        let days = c.synthesize(20_000, 3);
        let wet = days
            .iter()
            .filter(|w| matches!(w, Weather::Rainy | Weather::Thunderstorm))
            .count() as f64
            / days.len() as f64;
        // Snow days eat into everything; expected wet ≈ 0.35 * 0.95.
        let expected = 0.35 * 0.95;
        assert!((wet - expected).abs() < 0.05, "wet fraction {wet}");
    }

    #[test]
    fn persistence_creates_runs() {
        let sticky = Climate {
            persistence: 0.95,
            ..Climate::temperate_coastal()
        };
        let loose = Climate {
            persistence: 0.0,
            ..Climate::temperate_coastal()
        };
        let count_transitions = |days: &[Weather]| {
            days.windows(2)
                .filter(|w| {
                    let wet = |x: &Weather| matches!(x, Weather::Rainy | Weather::Thunderstorm);
                    wet(&w[0]) != wet(&w[1])
                })
                .count()
        };
        let sticky_t = count_transitions(&sticky.synthesize(5_000, 4));
        let loose_t = count_transitions(&loose.synthesize(5_000, 4));
        assert!(sticky_t * 2 < loose_t, "sticky {sticky_t} vs loose {loose_t}");
    }

    #[test]
    fn mean_thermal_factor_matches_sampled_mean() {
        let c = Climate::high_desert();
        let days = c.synthesize(50_000, 5);
        let sampled: f64 =
            days.iter().map(|w| w.thermal_factor()).sum::<f64>() / days.len() as f64;
        let analytic = c.mean_thermal_factor();
        assert!(
            (sampled - analytic).abs() < 0.02,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn wetter_climates_run_hotter() {
        assert!(
            Climate::temperate_coastal().mean_thermal_factor()
                > Climate::high_desert().mean_thermal_factor()
        );
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn invalid_climate_rejected() {
        let c = Climate {
            wet_day_fraction: 1.5,
            ..Climate::high_desert()
        };
        c.validate();
    }
}
