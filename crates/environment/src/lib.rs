//! # tn-environment — terrestrial neutron environments
//!
//! Models of the natural neutron background a computing device actually
//! sits in: the JESD89A-style high-energy flux scaled for altitude and
//! geomagnetic location, and the far more volatile thermal-neutron field,
//! modulated by weather and by the materials surrounding the device
//! (concrete floors, cooling water, walls).
//!
//! ## Example
//!
//! ```
//! use tn_environment::{Location, Surroundings, Weather, Environment};
//!
//! let nyc = Environment::new(Location::new_york(), Weather::Sunny, Surroundings::outdoors());
//! let leadville = Environment::new(Location::leadville(), Weather::Sunny, Surroundings::outdoors());
//! // High-energy flux grows steeply with altitude.
//! assert!(leadville.high_energy_flux().value() > 5.0 * nyc.high_energy_flux().value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod climate;
pub mod environment;
pub mod location;
pub mod room;
pub mod vehicle;
pub mod weather;

pub use climate::Climate;
pub use environment::Environment;
pub use location::Location;
pub use room::{DataCenterRoom, Surroundings};
pub use vehicle::{RoadSurface, Vehicle};
pub use weather::{SolarActivity, Weather};
