//! The autonomous-vehicle thermal environment of the paper's motivation
//! and discussion: "the road material, concrete or asphalt, the vehicle
//! is driving on makes a difference, as does the weather, and the type
//! and volume of fuel the vehicle uses. In addition, the number of
//! passengers will change the thermal neutron flux, as humans are
//! primarily composed of water".

use crate::{Environment, Location, Surroundings, Weather};

/// Road surface under the vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadSurface {
    /// Asphalt: hydrocarbons moderate, but the layer is thin.
    Asphalt,
    /// Concrete: the paper's +20 % parking-lot/slab case.
    Concrete,
    /// Wet road: water film adds moderation on top of the surface.
    WetConcrete,
}

impl RoadSurface {
    /// Additive thermal boost contributed by the road.
    pub fn thermal_boost(self) -> f64 {
        match self {
            RoadSurface::Asphalt => 0.10,
            RoadSurface::Concrete => 0.20,
            RoadSurface::WetConcrete => 0.30,
        }
    }
}

/// A vehicle configuration: everything around the computing device that
/// moderates neutrons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vehicle {
    road: RoadSurface,
    fuel_litres: f64,
    passengers: u32,
}

impl Vehicle {
    /// Additive thermal boost per litre of hydrocarbon fuel near the
    /// device (a full 50 L tank ≈ +5 %).
    pub const BOOST_PER_FUEL_LITRE: f64 = 0.001;

    /// Additive thermal boost per passenger (humans are ~60 % water;
    /// four passengers ≈ +10 %).
    pub const BOOST_PER_PASSENGER: f64 = 0.025;

    /// Creates a vehicle.
    ///
    /// # Panics
    ///
    /// Panics if `fuel_litres` is negative or above 200 (unit confusion)
    /// or `passengers > 9`.
    pub fn new(road: RoadSurface, fuel_litres: f64, passengers: u32) -> Self {
        assert!(
            (0.0..=200.0).contains(&fuel_litres),
            "fuel volume {fuel_litres} L out of range"
        );
        assert!(passengers <= 9, "more than 9 passengers in a car?");
        Self {
            road,
            fuel_litres,
            passengers,
        }
    }

    /// A battery-electric vehicle (no fuel tank) with one occupant on
    /// concrete.
    pub fn electric_single_occupant() -> Self {
        Self::new(RoadSurface::Concrete, 0.0, 1)
    }

    /// A full family car: 50 L of fuel, four passengers, asphalt.
    pub fn family_car() -> Self {
        Self::new(RoadSurface::Asphalt, 50.0, 4)
    }

    /// The road surface.
    pub fn road(&self) -> RoadSurface {
        self.road
    }

    /// Total additive thermal boost of the vehicle configuration.
    pub fn thermal_boost(&self) -> f64 {
        self.road.thermal_boost()
            + self.fuel_litres * Self::BOOST_PER_FUEL_LITRE
            + self.passengers as f64 * Self::BOOST_PER_PASSENGER
    }

    /// The vehicle as [`Surroundings`] for the FIT engine.
    pub fn surroundings(&self) -> Surroundings {
        Surroundings::outdoors().with_extra_boost(self.thermal_boost())
    }

    /// The full environment of the in-vehicle device.
    pub fn environment(&self, location: Location, weather: Weather) -> Environment {
        Environment::new(location, weather, self.surroundings())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_ordering_is_physical() {
        assert!(RoadSurface::Asphalt.thermal_boost() < RoadSurface::Concrete.thermal_boost());
        assert!(RoadSurface::Concrete.thermal_boost() < RoadSurface::WetConcrete.thermal_boost());
    }

    #[test]
    fn family_car_boost_combines_all_sources() {
        let car = Vehicle::family_car();
        // 0.10 road + 0.05 fuel + 0.10 passengers.
        assert!((car.thermal_boost() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn passengers_raise_the_thermal_field() {
        let empty = Vehicle::new(RoadSurface::Concrete, 0.0, 0);
        let full = Vehicle::new(RoadSurface::Concrete, 0.0, 5);
        assert!(full.thermal_boost() > empty.thermal_boost());
    }

    #[test]
    fn vehicle_environment_reacts_to_weather() {
        let car = Vehicle::family_car();
        let sunny = car.environment(Location::new_york(), Weather::Sunny);
        let storm = car.environment(Location::new_york(), Weather::Thunderstorm);
        assert!((storm.thermal_flux() / sunny.thermal_flux() - 2.0).abs() < 1e-9);
        assert_eq!(
            sunny.high_energy_flux().value(),
            storm.high_energy_flux().value()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_fuel_volume_rejected() {
        let _ = Vehicle::new(RoadSurface::Asphalt, 1000.0, 1);
    }

    #[test]
    #[should_panic(expected = "passengers")]
    fn bus_is_not_a_car() {
        let _ = Vehicle::new(RoadSurface::Asphalt, 50.0, 40);
    }
}
