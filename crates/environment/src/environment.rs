//! The combined neutron environment a device operates in.

use crate::weather::SolarActivity;
use crate::{Location, Surroundings, Weather};
use tn_physics::units::Flux;

/// A complete description of where a device sits: geographic location,
/// weather, and surrounding materials.
///
/// The high-energy flux depends only on the location (and solar activity,
/// not modelled); the thermal flux is additionally modulated by weather
/// and surroundings — the paper's central point about thermal-field
/// variability.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    location: Location,
    weather: Weather,
    surroundings: Surroundings,
    solar: SolarActivity,
}

impl Environment {
    /// Creates an environment.
    pub fn new(location: Location, weather: Weather, surroundings: Surroundings) -> Self {
        Self {
            location,
            weather,
            surroundings,
            solar: SolarActivity::default(),
        }
    }

    /// NYC outdoors on a sunny day — the sea-level reference environment.
    pub fn nyc_reference() -> Self {
        Self::new(Location::new_york(), Weather::Sunny, Surroundings::outdoors())
    }

    /// A liquid-cooled machine room at Leadville altitude — the paper's
    /// worst-case FIT configuration.
    pub fn leadville_machine_room() -> Self {
        Self::new(
            Location::leadville(),
            Weather::Sunny,
            Surroundings::hpc_machine_room(),
        )
    }

    /// The location.
    pub fn location(&self) -> &Location {
        &self.location
    }

    /// The weather.
    pub fn weather(&self) -> Weather {
        self.weather
    }

    /// The surroundings.
    pub fn surroundings(&self) -> &Surroundings {
        &self.surroundings
    }

    /// Returns a copy with different weather (for sweeps).
    pub fn with_weather(&self, weather: Weather) -> Self {
        Self {
            weather,
            ..self.clone()
        }
    }

    /// Returns a copy with different surroundings.
    pub fn with_surroundings(&self, surroundings: Surroundings) -> Self {
        Self {
            surroundings,
            ..self.clone()
        }
    }

    /// Returns a copy at a different phase of the solar cycle.
    pub fn with_solar_activity(&self, solar: SolarActivity) -> Self {
        Self {
            solar,
            ..self.clone()
        }
    }

    /// The solar-cycle phase.
    pub fn solar_activity(&self) -> SolarActivity {
        self.solar
    }

    /// High-energy (>10 MeV) flux at the device.
    pub fn high_energy_flux(&self) -> Flux {
        self.location.high_energy_flux()
            * self.weather.high_energy_factor()
            * self.solar.flux_factor()
    }

    /// Thermal (<0.5 eV) flux at the device, with all modifiers applied.
    pub fn thermal_flux(&self) -> Flux {
        self.location.base_thermal_flux()
            * self.weather.thermal_factor()
            * self.surroundings.thermal_factor()
            * self.solar.flux_factor()
    }

    /// Thermal-to-high-energy flux ratio — the quantity that decides how
    /// much the thermal cross section matters for the FIT rate.
    pub fn thermal_to_high_energy_ratio(&self) -> f64 {
        self.thermal_flux() / self.high_energy_flux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_room_raises_only_thermals() {
        let outdoor = Environment::nyc_reference();
        let indoor = outdoor.with_surroundings(Surroundings::hpc_machine_room());
        assert_eq!(
            outdoor.high_energy_flux().value(),
            indoor.high_energy_flux().value()
        );
        assert!((indoor.thermal_flux() / outdoor.thermal_flux() - 1.44).abs() < 1e-9);
    }

    #[test]
    fn thunderstorm_doubles_thermal_ratio() {
        let sunny = Environment::nyc_reference();
        let storm = sunny.with_weather(Weather::Thunderstorm);
        let r = storm.thermal_to_high_energy_ratio() / sunny.thermal_to_high_energy_ratio();
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn leadville_room_is_the_worst_case() {
        let reference = Environment::nyc_reference();
        let worst = Environment::leadville_machine_room();
        assert!(worst.thermal_flux().value() > 15.0 * reference.thermal_flux().value());
        assert!(worst.high_energy_flux().value() > 10.0 * reference.high_energy_flux().value());
    }

    #[test]
    fn solar_maximum_suppresses_both_populations_equally() {
        let quiet = Environment::nyc_reference();
        let active = quiet.with_solar_activity(SolarActivity::Maximum);
        assert!((active.high_energy_flux() / quiet.high_energy_flux() - 0.75).abs() < 1e-12);
        assert!((active.thermal_flux() / quiet.thermal_flux() - 0.75).abs() < 1e-12);
        // The thermal *share* of any FIT rate is therefore unchanged.
        assert!(
            (active.thermal_to_high_energy_ratio() - quiet.thermal_to_high_energy_ratio()).abs()
                < 1e-12
        );
        assert_eq!(active.solar_activity(), SolarActivity::Maximum);
    }

    #[test]
    fn accessors_round_trip() {
        let env = Environment::leadville_machine_room();
        assert_eq!(env.location().name(), "Leadville, CO");
        assert_eq!(env.weather(), Weather::Sunny);
        assert!(env.surroundings().has_water_cooling());
    }

}
