//! Weather modulation of the thermal-neutron flux.
//!
//! Rain droplets moderate the fast cascade: "the thermal neutron flux, as
//! measured in Ziegler 2003, can be 2× higher during a thunderstorm than
//! on a sunny day" (paper, Section VI). Snow cover conversely shields the
//! ground-albedo thermal component.


/// Phase of the 11-year solar cycle.
///
/// Galactic cosmic rays — the source of the whole neutron cascade — are
/// partially swept away by the heliospheric field at solar maximum, so
/// *both* neutron populations drop by ~25 % relative to solar minimum
/// (JESD89A models this explicitly; the paper notes fluxes hold "under
/// normal solar conditions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolarActivity {
    /// Quiet sun: maximum cosmic-ray flux (the conservative default).
    #[default]
    Minimum,
    /// Mid-cycle.
    Average,
    /// Active sun: strongest modulation, lowest neutron flux.
    Maximum,
}

impl SolarActivity {
    /// Multiplier on every neutron population relative to solar minimum.
    pub fn flux_factor(self) -> f64 {
        match self {
            SolarActivity::Minimum => 1.0,
            SolarActivity::Average => 0.88,
            SolarActivity::Maximum => 0.75,
        }
    }
}

/// Weather conditions affecting the thermal field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Weather {
    /// Fair weather — the reference condition.
    #[default]
    Sunny,
    /// Steady rain; intermediate moderation boost.
    Rainy,
    /// Heavy thunderstorm; the paper's 2× case.
    Thunderstorm,
    /// Thick snowpack; moderated *and* absorbed near the ground.
    Snowpack,
}

impl Weather {
    /// All conditions, for sweeps.
    pub const ALL: [Weather; 4] = [
        Weather::Sunny,
        Weather::Rainy,
        Weather::Thunderstorm,
        Weather::Snowpack,
    ];

    /// Multiplier applied to the fair-weather thermal flux.
    pub fn thermal_factor(self) -> f64 {
        match self {
            Weather::Sunny => 1.0,
            Weather::Rainy => 1.5,
            Weather::Thunderstorm => 2.0,
            Weather::Snowpack => 0.8,
        }
    }

    /// Multiplier applied to the high-energy flux (≈ 1: weather barely
    /// touches the fast cascade).
    pub fn high_energy_factor(self) -> f64 {
        1.0
    }
}

impl std::fmt::Display for Weather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Weather::Sunny => "sunny",
            Weather::Rainy => "rainy",
            Weather::Thunderstorm => "thunderstorm",
            Weather::Snowpack => "snowpack",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_maximum_suppresses_the_cascade() {
        assert!(SolarActivity::Maximum.flux_factor() < SolarActivity::Average.flux_factor());
        assert!(SolarActivity::Average.flux_factor() < SolarActivity::Minimum.flux_factor());
        assert_eq!(SolarActivity::default(), SolarActivity::Minimum);
        assert_eq!(SolarActivity::Minimum.flux_factor(), 1.0);
    }

    #[test]
    fn thunderstorm_doubles_thermals() {
        assert_eq!(Weather::Thunderstorm.thermal_factor(), 2.0);
        assert_eq!(Weather::Sunny.thermal_factor(), 1.0);
    }

    #[test]
    fn weather_never_touches_fast_flux() {
        for w in Weather::ALL {
            assert_eq!(w.high_energy_factor(), 1.0);
        }
    }

    #[test]
    fn ordering_of_factors_is_physical() {
        assert!(Weather::Snowpack.thermal_factor() < Weather::Sunny.thermal_factor());
        assert!(Weather::Sunny.thermal_factor() < Weather::Rainy.thermal_factor());
        assert!(Weather::Rainy.thermal_factor() < Weather::Thunderstorm.thermal_factor());
    }

    #[test]
    fn default_is_sunny() {
        assert_eq!(Weather::default(), Weather::Sunny);
    }

    #[test]
    fn display_names() {
        assert_eq!(Weather::Thunderstorm.to_string(), "thunderstorm");
    }
}
