//! Geographic locations and the altitude scaling of the atmospheric
//! neutron flux.
//!
//! The high-energy flux "increases exponentially with altitude" (paper,
//! Section II-A); the conventional JESD89A treatment scales the New York
//! City sea-level reference by an exponential in altitude. The model is
//! calibrated so Leadville, CO (10,151 ft) — the paper's high-altitude
//! comparison point — comes out at ≈ 13× NYC, which also reproduces the
//! well-known ≈ 3.8× factor for Denver.

use tn_physics::constants::{NYC_HIGH_ENERGY_FLUX, NYC_THERMAL_FLUX};
use tn_physics::units::Flux;

/// Exponential altitude coefficient (1/m), fitted to Leadville ≈ 13× NYC.
const ALTITUDE_COEFF_PER_M: f64 = 8.29e-4;

/// The thermal field scales *faster* with altitude than the fast field:
/// the thermal population is produced locally by moderation of the
/// growing cascade plus ground albedo, so its altitude exponent exceeds
/// one. The value 1.24 is fitted to the FIT shares the paper quotes
/// (K20 29 % SDC and APU CPU+GPU 39 % DUE at Leadville, Xeon Phi 4.2 %
/// SDC at NYC) and is consistent with published thermal/fast ratios
/// rising between sea level and mountain altitudes.
pub const THERMAL_ALTITUDE_EXPONENT: f64 = 1.24;

/// A geographic site with the parameters that set its natural neutron
/// background.
#[derive(Debug, Clone, PartialEq)]
pub struct Location {
    name: String,
    altitude_m: f64,
    /// Geomagnetic-rigidity multiplier relative to the NYC reference
    /// (≈ 1.0 for mid-latitude US sites; < 1 near the equator).
    rigidity_factor: f64,
}

impl Location {
    /// Creates a location.
    ///
    /// # Panics
    ///
    /// Panics if `altitude_m` is below the Dead Sea (−430 m) or above
    /// 9,000 m, or if `rigidity_factor` is not positive — inputs outside
    /// those ranges indicate unit confusion (feet vs metres).
    pub fn new(name: impl Into<String>, altitude_m: f64, rigidity_factor: f64) -> Self {
        assert!(
            (-430.0..=9_000.0).contains(&altitude_m),
            "altitude {altitude_m} m out of terrestrial range (feet vs metres?)"
        );
        assert!(rigidity_factor > 0.0, "rigidity factor must be positive");
        Self {
            name: name.into(),
            altitude_m,
            rigidity_factor,
        }
    }

    /// New York City — the JESD89A sea-level reference point.
    pub fn new_york() -> Self {
        Self::new("New York City, NY", 10.0, 1.0)
    }

    /// Leadville, CO at 10,151 ft — the paper's high-altitude site.
    pub fn leadville() -> Self {
        Self::new("Leadville, CO", 3_094.0, 1.0)
    }

    /// Los Alamos, NM (≈ 7,320 ft) — home of the Trinity supercomputer and
    /// the Tin-II detector deployment.
    pub fn los_alamos() -> Self {
        Self::new("Los Alamos, NM", 2_231.0, 1.0)
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Altitude in metres.
    pub fn altitude_m(&self) -> f64 {
        self.altitude_m
    }

    /// Altitude in feet (for comparison with the paper's figures).
    pub fn altitude_ft(&self) -> f64 {
        self.altitude_m / 0.3048
    }

    /// Flux multiplier relative to the NYC sea-level reference.
    pub fn flux_factor(&self) -> f64 {
        self.rigidity_factor * (ALTITUDE_COEFF_PER_M * (self.altitude_m - 10.0)).exp()
    }

    /// Outdoor high-energy (>10 MeV) flux at this location.
    pub fn high_energy_flux(&self) -> Flux {
        NYC_HIGH_ENERGY_FLUX * self.flux_factor()
    }

    /// Outdoor fair-weather thermal flux at this location, before any
    /// surroundings or weather modifiers.
    ///
    /// The thermal field is produced by moderation of the same cascade,
    /// so it scales with the fast flux — but super-linearly (exponent
    /// [`THERMAL_ALTITUDE_EXPONENT`]): local production and ground albedo
    /// add to the directly-scaled component. Everything site-specific on
    /// top of that is modelled by [`crate::Surroundings`] and
    /// [`crate::Weather`].
    pub fn base_thermal_flux(&self) -> Flux {
        NYC_THERMAL_FLUX * self.flux_factor().powf(THERMAL_ALTITUDE_EXPONENT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nyc_is_the_reference() {
        let nyc = Location::new_york();
        assert!((nyc.flux_factor() - 1.0).abs() < 1e-9);
        assert!((nyc.high_energy_flux().per_hour() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn leadville_is_about_13x_nyc() {
        let f = Location::leadville().flux_factor();
        assert!((f - 13.0).abs() < 1.0, "factor = {f}");
    }

    #[test]
    fn denver_altitude_gives_known_factor() {
        let denver = Location::new("Denver, CO", 1_609.0, 1.0);
        let f = denver.flux_factor();
        assert!((f - 3.8).abs() < 0.4, "factor = {f}");
    }

    #[test]
    fn altitude_feet_conversion() {
        let lv = Location::leadville();
        assert!((lv.altitude_ft() - 10_151.0).abs() < 20.0);
    }

    #[test]
    fn thermal_scales_super_linearly_with_altitude() {
        let lv = Location::leadville();
        let ratio = lv.base_thermal_flux() / Location::new_york().base_thermal_flux();
        assert!(
            ratio > lv.flux_factor(),
            "thermal ratio {ratio} must exceed fast factor {}",
            lv.flux_factor()
        );
        assert!((ratio - lv.flux_factor().powf(THERMAL_ALTITUDE_EXPONENT)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "feet vs metres")]
    fn altitude_in_feet_is_rejected() {
        // 10,151 "metres" is above any inhabited site: classic unit bug.
        let _ = Location::new("oops", 10_151.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rigidity factor")]
    fn non_positive_rigidity_rejected() {
        let _ = Location::new("oops", 100.0, 0.0);
    }
}
