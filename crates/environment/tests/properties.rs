//! Property-style environment-model invariants, driven by fixed-seed
//! `tn_rng` generator loops.

use tn_rng::Rng;
use tn_environment::{
    Climate, Environment, Location, RoadSurface, SolarActivity, Surroundings, Vehicle, Weather,
};

const CASES: usize = 32;

#[test]
fn flux_grows_monotonically_with_altitude() {
    let mut rng = Rng::seed_from_u64(0xe01);
    for _ in 0..CASES {
        let a1 = rng.gen_range(0.0..4000.0);
        let delta = rng.gen_range(10.0..2000.0);
        let a2 = (a1 + delta).min(8000.0);
        let lo = Location::new("lo", a1, 1.0);
        let hi = Location::new("hi", a2, 1.0);
        assert!(hi.high_energy_flux().value() > lo.high_energy_flux().value());
        assert!(hi.base_thermal_flux().value() > lo.base_thermal_flux().value());
    }
}

#[test]
fn thermal_grows_faster_than_fast_with_altitude() {
    let mut rng = Rng::seed_from_u64(0xe02);
    for _ in 0..CASES {
        let a1 = rng.gen_range(100.0..3000.0);
        let site = Location::new("s", a1, 1.0);
        let nyc = Location::new_york();
        let fast_ratio = site.high_energy_flux() / nyc.high_energy_flux();
        let thermal_ratio = site.base_thermal_flux() / nyc.base_thermal_flux();
        assert!(thermal_ratio >= fast_ratio - 1e-12);
    }
}

#[test]
fn surroundings_factor_is_never_negative() {
    let mut rng = Rng::seed_from_u64(0xe03);
    for _ in 0..CASES {
        let extra = rng.gen_range(-1.0..5.0);
        let s = Surroundings::hpc_machine_room().with_extra_boost(extra);
        assert!(s.thermal_factor() >= 0.0);
    }
}

#[test]
fn vehicle_boost_is_monotone_in_occupancy_and_fuel() {
    let mut rng = Rng::seed_from_u64(0xe04);
    for _ in 0..CASES {
        let fuel = rng.gen_range(0.0..150.0);
        let passengers = rng.gen_range(0u32..8);
        let base = Vehicle::new(RoadSurface::Asphalt, fuel, passengers);
        let more_people = Vehicle::new(RoadSurface::Asphalt, fuel, passengers + 1);
        let more_fuel = Vehicle::new(RoadSurface::Asphalt, fuel + 10.0, passengers);
        assert!(more_people.thermal_boost() > base.thermal_boost());
        assert!(more_fuel.thermal_boost() > base.thermal_boost());
    }
}

#[test]
fn solar_activity_preserves_the_thermal_share() {
    let mut rng = Rng::seed_from_u64(0xe05);
    for _ in 0..CASES {
        let altitude = rng.gen_range(0.0..3000.0);
        let env = Environment::new(
            Location::new("s", altitude, 1.0),
            Weather::Rainy,
            Surroundings::water_cooled(),
        );
        for solar in [SolarActivity::Average, SolarActivity::Maximum] {
            let modulated = env.with_solar_activity(solar);
            assert!(
                (modulated.thermal_to_high_energy_ratio() - env.thermal_to_high_energy_ratio())
                    .abs()
                    < 1e-12
            );
            assert!(modulated.thermal_flux().value() < env.thermal_flux().value());
        }
    }
}

#[test]
fn climate_sequences_have_requested_length() {
    let mut rng = Rng::seed_from_u64(0xe06);
    for _ in 0..CASES {
        let days = rng.gen_range(1usize..2000);
        let seed = rng.gen_range(0u64..1000);
        let seq = Climate::high_desert().synthesize(days, seed);
        assert_eq!(seq.len(), days);
    }
}

#[test]
fn mean_thermal_factor_is_within_weather_extremes() {
    let mut rng = Rng::seed_from_u64(0xe07);
    for _ in 0..CASES {
        let c = Climate {
            wet_day_fraction: rng.gen_range(0.0..1.0),
            storm_fraction: rng.gen_range(0.0..1.0),
            persistence: 0.5,
            snow_fraction: rng.gen_range(0.0..0.5),
        };
        let m = c.mean_thermal_factor();
        assert!(m >= Weather::Snowpack.thermal_factor() - 1e-12);
        assert!(m <= Weather::Thunderstorm.thermal_factor() + 1e-12);
    }
}
