//! Property-based environment-model invariants.

use proptest::prelude::*;
use tn_environment::{
    Climate, Environment, Location, RoadSurface, SolarActivity, Surroundings, Vehicle, Weather,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flux_grows_monotonically_with_altitude(
        a1 in 0.0f64..4000.0,
        delta in 10.0f64..2000.0,
    ) {
        let a2 = (a1 + delta).min(8000.0);
        let lo = Location::new("lo", a1, 1.0);
        let hi = Location::new("hi", a2, 1.0);
        prop_assert!(hi.high_energy_flux().value() > lo.high_energy_flux().value());
        prop_assert!(hi.base_thermal_flux().value() > lo.base_thermal_flux().value());
    }

    #[test]
    fn thermal_grows_faster_than_fast_with_altitude(
        a1 in 100.0f64..3000.0,
    ) {
        let site = Location::new("s", a1, 1.0);
        let nyc = Location::new_york();
        let fast_ratio = site.high_energy_flux() / nyc.high_energy_flux();
        let thermal_ratio = site.base_thermal_flux() / nyc.base_thermal_flux();
        prop_assert!(thermal_ratio >= fast_ratio - 1e-12);
    }

    #[test]
    fn surroundings_factor_is_never_negative(extra in -1.0f64..5.0) {
        let s = Surroundings::hpc_machine_room().with_extra_boost(extra);
        prop_assert!(s.thermal_factor() >= 0.0);
    }

    #[test]
    fn vehicle_boost_is_monotone_in_occupancy_and_fuel(
        fuel in 0.0f64..150.0,
        passengers in 0u32..8,
    ) {
        let base = Vehicle::new(RoadSurface::Asphalt, fuel, passengers);
        let more_people = Vehicle::new(RoadSurface::Asphalt, fuel, passengers + 1);
        let more_fuel = Vehicle::new(RoadSurface::Asphalt, fuel + 10.0, passengers);
        prop_assert!(more_people.thermal_boost() > base.thermal_boost());
        prop_assert!(more_fuel.thermal_boost() > base.thermal_boost());
    }

    #[test]
    fn solar_activity_preserves_the_thermal_share(
        altitude in 0.0f64..3000.0,
    ) {
        let env = Environment::new(
            Location::new("s", altitude, 1.0),
            Weather::Rainy,
            Surroundings::water_cooled(),
        );
        for solar in [SolarActivity::Average, SolarActivity::Maximum] {
            let modulated = env.with_solar_activity(solar);
            prop_assert!(
                (modulated.thermal_to_high_energy_ratio()
                    - env.thermal_to_high_energy_ratio())
                .abs()
                    < 1e-12
            );
            prop_assert!(modulated.thermal_flux().value() < env.thermal_flux().value());
        }
    }

    #[test]
    fn climate_sequences_have_requested_length(
        days in 1usize..2000,
        seed in 0u64..1000,
    ) {
        let seq = Climate::high_desert().synthesize(days, seed);
        prop_assert_eq!(seq.len(), days);
    }

    #[test]
    fn mean_thermal_factor_is_within_weather_extremes(
        wet in 0.0f64..1.0,
        storm in 0.0f64..1.0,
        snow in 0.0f64..0.5,
    ) {
        let c = Climate {
            wet_day_fraction: wet,
            storm_fraction: storm,
            persistence: 0.5,
            snow_fraction: snow,
        };
        let m = c.mean_thermal_factor();
        prop_assert!(m >= Weather::Snowpack.thermal_factor() - 1e-12);
        prop_assert!(m <= Weather::Thunderstorm.thermal_factor() + 1e-12);
    }
}
