//! Property tests for `tn_obs::hist` under `tn-rng` value streams.
//!
//! The repo has no property-testing framework (hermetic workspace), so
//! these follow the house idiom: a fixed-seed generator loop over many
//! random cases, with the failing case's seed/index in the assertion
//! message. Three invariants are exercised:
//!
//! 1. quantile monotonicity — `p50 <= p90 <= p99` (and any `q1 <= q2`);
//! 2. snapshot-delta non-negativity — `later.delta(&earlier)` never
//!    underflows and accounts exactly for the observations in between;
//! 3. bucket-bound containment — every quantile lies inside the
//!    power-of-two envelope of the observed values.

use tn_obs::{Histogram, Snapshot, Unit};
use tn_rng::Rng;

/// Number of random streams each property is checked against.
const STREAMS: usize = 50;

fn hist() -> Histogram {
    Histogram::new("props_test", "property-test histogram", &[], Unit::Count)
}

/// Draws a value with a random magnitude so streams mix tiny and huge
/// observations (a plain `next_u64` would almost always land in the top
/// few buckets).
fn random_value(rng: &mut Rng) -> u64 {
    let shift = rng.gen_range(0..64u64) as u32;
    rng.next_u64() >> shift
}

/// The lower edge of the power-of-two bucket containing `v` (0 for the
/// shared 0/1 bucket), mirroring the documented bucket layout.
fn bucket_lower(v: u64) -> f64 {
    let i = 63 - v.max(1).leading_zeros();
    if i == 0 {
        0.0
    } else {
        (1u128 << i) as f64
    }
}

/// The (exclusive) upper edge of the bucket containing `v`.
fn bucket_upper(v: u64) -> f64 {
    let i = 63 - v.max(1).leading_zeros();
    (1u128 << (i + 1)) as f64
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut rng = Rng::seed_from_u64(0x0b5_0001);
    for stream in 0..STREAMS {
        let h = hist();
        let n = rng.gen_range(1..400u64);
        for _ in 0..n {
            h.observe(random_value(&mut rng));
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.50);
        let p90 = snap.quantile(0.90);
        let p99 = snap.quantile(0.99);
        assert!(
            p50 <= p90 && p90 <= p99,
            "stream {stream}: p50={p50} p90={p90} p99={p99} not monotone"
        );
        // The headline triple is a special case; check a dense grid too.
        let mut prev = snap.quantile(0.0);
        for step in 1..=20 {
            let q = step as f64 / 20.0;
            let cur = snap.quantile(q);
            assert!(
                cur >= prev,
                "stream {stream}: quantile({q}) = {cur} < quantile({}) = {prev}",
                (step - 1) as f64 / 20.0
            );
            prev = cur;
        }
    }
}

#[test]
fn snapshot_delta_accounts_exactly_for_new_observations() {
    let mut rng = Rng::seed_from_u64(0x0b5_0002);
    for stream in 0..STREAMS {
        let h = hist();
        let before_n = rng.gen_range(0..200u64);
        for _ in 0..before_n {
            h.observe(random_value(&mut rng));
        }
        let earlier = h.snapshot();

        let extra_n = rng.gen_range(0..200u64);
        let mut extra_sum = 0u64;
        let mut extra_max = 0u64;
        for _ in 0..extra_n {
            // Keep deltas well below u64::MAX so `sum` cannot wrap.
            let v = random_value(&mut rng) >> 8;
            extra_sum += v;
            extra_max = extra_max.max(v);
            h.observe(v);
        }
        let later = h.snapshot();

        let delta = later.delta(&earlier);
        assert_eq!(
            delta.count(),
            extra_n,
            "stream {stream}: delta count should equal new observations"
        );
        assert_eq!(
            delta.sum(),
            extra_sum,
            "stream {stream}: delta sum should equal new values' sum"
        );
        // Non-negativity: counts and sum are u64 (a negative delta would
        // have panicked on subtraction overflow), and every quantile of
        // the delta is a non-negative value bounded by the new maximum's
        // bucket.
        for step in 0..=10 {
            let q = step as f64 / 10.0;
            let v = delta.quantile(q);
            assert!(v >= 0.0, "stream {stream}: delta quantile({q}) = {v} < 0");
            if extra_n > 0 {
                assert!(
                    v <= bucket_upper(extra_max),
                    "stream {stream}: delta quantile({q}) = {v} above max bucket {}",
                    bucket_upper(extra_max)
                );
            }
        }
        if extra_n == 0 {
            assert_eq!(delta.quantile(0.5), 0.0, "empty delta quantile must be 0");
        }
        // Taking a delta against a *later* snapshot must panic, not wrap.
        if extra_n > 0 {
            let res = std::panic::catch_unwind(|| earlier.delta(&later));
            assert!(
                res.is_err(),
                "stream {stream}: delta against a later snapshot must panic"
            );
        }
    }
}

#[test]
fn quantiles_stay_inside_the_observed_bucket_envelope() {
    let mut rng = Rng::seed_from_u64(0x0b5_0003);
    for stream in 0..STREAMS {
        let h = hist();
        let n = rng.gen_range(1..300u64);
        let mut min_v = u64::MAX;
        let mut max_v = 0u64;
        for _ in 0..n {
            let v = random_value(&mut rng);
            min_v = min_v.min(v);
            max_v = max_v.max(v);
            h.observe(v);
        }
        let snap = h.snapshot();
        let lo = bucket_lower(min_v);
        let hi = bucket_upper(max_v);
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = snap.quantile(q);
            assert!(
                v >= lo && v <= hi,
                "stream {stream}: quantile({q}) = {v} outside envelope [{lo}, {hi}] \
                 (min={min_v}, max={max_v})"
            );
        }
    }
}

#[test]
fn single_value_quantiles_land_in_that_values_bucket() {
    let mut rng = Rng::seed_from_u64(0x0b5_0004);
    for stream in 0..STREAMS {
        let v = random_value(&mut rng);
        let h = hist();
        h.observe(v);
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let est = snap.quantile(q);
            assert!(
                est >= bucket_lower(v) && est <= bucket_upper(v),
                "stream {stream}: quantile({q}) of single value {v} = {est} outside \
                 its bucket [{}, {}]",
                bucket_lower(v),
                bucket_upper(v)
            );
        }
    }
}

#[test]
fn empty_snapshot_quantile_is_zero() {
    let snap: Snapshot = hist().snapshot();
    assert_eq!(snap.count(), 0);
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(snap.quantile(q), 0.0);
    }
}
