//! tn-watch time-series core: ring-buffer timelines, sliding-window
//! count-rate estimation, EWMA baselines and online change-point
//! detection for Poisson count streams.
//!
//! The monitor consumes `(timestamp, count, exposure)` samples — e.g.
//! hourly Tin-II counter bins — and maintains:
//!
//! * a fixed-capacity ring buffer of [`RatePoint`]s (the servable
//!   timeline),
//! * a sliding-window rate estimate with a confidence interval computed
//!   by an injected [`IntervalFn`] (callers wire in the exact Garwood
//!   interval from `tn-physics`; [`normal_interval`] is the std-only
//!   default),
//! * an EWMA display baseline plus a *frozen* reference rate learned
//!   over the warmup segment,
//! * two change-point detectors against the frozen reference: a
//!   two-sided Poisson CUSUM (log-likelihood-ratio form, step changes)
//!   and an interval-overlap drift test (sustained disjoint confidence
//!   intervals, slow drifts).
//!
//! Detected changes are returned as structured [`Alert`]s and emitted
//! through the tn-obs event sinks (`tn_watch_alert` WARN events). After
//! every alert the monitor *re-warms*: the reference segment and the
//! sliding window restart empty and the detectors stay disarmed for a
//! fresh warmup, so a single step yields exactly one alert and the
//! monitor re-learns its baseline from post-change samples only.
//!
//! Everything here is deterministic: no clocks are read (timestamps are
//! supplied by the caller, typically from [`crate::now_nanos`] under a
//! [`crate::VirtualClock`] in tests) and no randomness is used.

use crate::log::FieldValue;

/// Maps `(observed count, confidence)` to a two-sided confidence
/// interval `(lower, upper)` on the underlying Poisson mean count.
///
/// The rate interval follows by dividing by the exposure. `tn-physics`
/// callers inject the exact Garwood interval
/// (`PoissonInterval::exact`); [`normal_interval`] is the dependency-free
/// fallback used by default.
pub type IntervalFn = fn(u64, f64) -> (f64, f64);

/// Normal-approximation interval on a Poisson mean: `n ± z·√n`, clamped
/// at zero. Adequate for large counts; callers with `tn-physics` in
/// reach should inject the exact Garwood interval instead.
pub fn normal_interval(count: u64, confidence: f64) -> (f64, f64) {
    let n = count as f64;
    let z = normal_quantile(0.5 + confidence.clamp(0.0, 0.999_999) / 2.0);
    let half = z * n.sqrt();
    ((n - half).max(0.0), n + half)
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 on (0, 1)).
fn normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// What kind of change a detector flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// CUSUM: the rate stepped up relative to the reference baseline.
    StepUp,
    /// CUSUM: the rate stepped down relative to the reference baseline.
    StepDown,
    /// Interval-overlap test: the sliding-window confidence interval
    /// stayed disjoint from the baseline interval for a sustained run.
    Drift,
}

impl AlertKind {
    /// Stable lower-snake label (`step_up` / `step_down` / `drift`) used
    /// in events, metrics and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::StepUp => "step_up",
            AlertKind::StepDown => "step_down",
            AlertKind::Drift => "drift",
        }
    }
}

/// A structured change-point alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Which detector fired and in which direction.
    pub kind: AlertKind,
    /// Sample index (0-based, over all ingested samples) where the
    /// change is estimated to have begun.
    pub onset_index: u64,
    /// Sample index at which the detector crossed its threshold.
    pub detected_index: u64,
    /// Timestamp of the detecting sample (nanoseconds).
    pub ts_nanos: u64,
    /// The frozen reference rate the change was measured against
    /// (counts per second).
    pub baseline_rate: f64,
    /// Mean rate observed over `[onset_index, detected_index]`.
    pub observed_rate: f64,
    /// Relative change: `observed_rate / baseline_rate - 1`.
    pub magnitude: f64,
}

/// One servable timeline point: the sample plus the estimates current
/// at ingest time.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// 0-based index over all ingested samples.
    pub index: u64,
    /// Sample timestamp (nanoseconds).
    pub ts_nanos: u64,
    /// Raw event count in this sample.
    pub count: u64,
    /// Live time of this sample in seconds.
    pub exposure_seconds: f64,
    /// This sample's own rate, `count / exposure` (counts per second).
    pub rate: f64,
    /// Sliding-window rate estimate (counts per second).
    pub window_rate: f64,
    /// Lower bound of the window-rate confidence interval.
    pub window_lower: f64,
    /// Upper bound of the window-rate confidence interval.
    pub window_upper: f64,
    /// EWMA baseline after absorbing this sample.
    pub baseline: f64,
}

/// Tuning for a [`Monitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Ring-buffer capacity: how many recent [`RatePoint`]s are kept.
    pub capacity: usize,
    /// Sliding-estimator window length in samples.
    pub window: usize,
    /// Samples used to learn the frozen reference rate before the
    /// detectors arm. Alerts are never raised during warmup.
    pub warmup: usize,
    /// EWMA smoothing factor for the display baseline.
    pub ewma_alpha: f64,
    /// Relative step size the CUSUM is designed against (e.g. `0.1`
    /// arms it for ±10 % rate steps).
    pub cusum_delta: f64,
    /// CUSUM decision threshold in nats. Larger is slower but quieter.
    pub cusum_threshold: f64,
    /// Confidence level for the drift test's intervals.
    pub drift_confidence: f64,
    /// Consecutive disjoint-interval samples required for a drift alert.
    pub drift_run: usize,
    /// Confidence-interval estimator (see [`IntervalFn`]).
    pub interval: IntervalFn,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            window: 12,
            warmup: 32,
            ewma_alpha: 0.05,
            cusum_delta: 0.1,
            cusum_threshold: 14.0,
            drift_confidence: 0.999,
            drift_run: 6,
            interval: normal_interval,
        }
    }
}

/// Streaming change-point monitor over a Poisson count series.
#[derive(Debug)]
pub struct Monitor {
    cfg: MonitorConfig,
    // Ring buffer of the most recent `cfg.capacity` points.
    points: Vec<RatePoint>,
    start: usize,
    seen: u64,
    // Sliding estimator window (most recent `cfg.window` samples).
    recent: std::collections::VecDeque<(u64, f64)>,
    win_count: u64,
    win_exposure: f64,
    // Reference segment: warmup at first, re-learned after every alert.
    ref_count: u64,
    ref_exposure: f64,
    ref_samples: u64,
    baseline: f64,
    baseline_lower: f64,
    baseline_upper: f64,
    armed: bool,
    ewma: Option<f64>,
    // Two-sided CUSUM state.
    s_up: f64,
    s_dn: f64,
    up_onset: u64,
    dn_onset: u64,
    // Drift-run state.
    drift_hits: usize,
    drift_onset: u64,
    alerts: Vec<Alert>,
}

impl Monitor {
    /// A monitor with the given tuning. Panics on degenerate configs
    /// (zero capacity/window/warmup, non-positive CUSUM design).
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(cfg.capacity > 0, "capacity must be positive");
        assert!(cfg.window > 0, "window must be positive");
        assert!(cfg.warmup > 0, "warmup must be positive");
        assert!(
            cfg.cusum_delta > 0.0 && cfg.cusum_delta < 1.0,
            "cusum_delta must be in (0, 1)"
        );
        assert!(cfg.cusum_threshold > 0.0, "cusum_threshold must be positive");
        assert!(cfg.drift_run > 0, "drift_run must be positive");
        Self {
            points: Vec::with_capacity(cfg.capacity.min(4096)),
            start: 0,
            seen: 0,
            recent: std::collections::VecDeque::with_capacity(cfg.window + 1),
            win_count: 0,
            win_exposure: 0.0,
            ref_count: 0,
            ref_exposure: 0.0,
            ref_samples: 0,
            baseline: 0.0,
            baseline_lower: 0.0,
            baseline_upper: 0.0,
            armed: false,
            ewma: None,
            s_up: 0.0,
            s_dn: 0.0,
            up_onset: 0,
            dn_onset: 0,
            drift_hits: 0,
            drift_onset: 0,
            alerts: Vec::new(),
            cfg,
        }
    }

    /// The tuning this monitor runs with.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Ingests one sample and returns any alerts it raised (at most
    /// one). Samples with non-positive exposure are ignored.
    pub fn observe(&mut self, ts_nanos: u64, count: u64, exposure_seconds: f64) -> Vec<Alert> {
        let usable = exposure_seconds.is_finite() && exposure_seconds > 0.0;
        if !usable {
            return Vec::new();
        }
        let index = self.seen;
        self.seen += 1;
        let rate = count as f64 / exposure_seconds;

        // Sliding estimator window.
        self.recent.push_back((count, exposure_seconds));
        self.win_count += count;
        self.win_exposure += exposure_seconds;
        if self.recent.len() > self.cfg.window {
            let (c, e) = self.recent.pop_front().expect("window non-empty");
            self.win_count -= c;
            self.win_exposure -= e;
        }
        let window_rate = self.win_count as f64 / self.win_exposure;
        let (wl, wu) = (self.cfg.interval)(self.win_count, self.cfg.drift_confidence);
        let (window_lower, window_upper) = (wl / self.win_exposure, wu / self.win_exposure);

        // EWMA display baseline.
        let ewma = match self.ewma {
            None => rate,
            Some(prev) => prev + self.cfg.ewma_alpha * (rate - prev),
        };
        self.ewma = Some(ewma);

        let mut raised = Vec::new();
        if !self.armed {
            // Warmup (initial or post-alert): accumulate the reference
            // segment; no detection until it is trustworthy.
            self.ref_count += count;
            self.ref_exposure += exposure_seconds;
            self.ref_samples += 1;
            if self.ref_samples >= self.cfg.warmup as u64 {
                self.freeze_reference();
                self.up_onset = index + 1;
                self.dn_onset = index + 1;
            }
        } else {
            if let Some(alert) = self.cusum_step(index, ts_nanos, count, exposure_seconds) {
                raised.push(alert);
            } else if let Some(alert) =
                self.drift_step(index, ts_nanos, window_rate, window_lower, window_upper)
            {
                raised.push(alert);
            }
        }

        self.push_point(RatePoint {
            index,
            ts_nanos,
            count,
            exposure_seconds,
            rate,
            window_rate,
            window_lower,
            window_upper,
            baseline: ewma,
        });
        for alert in &raised {
            emit_alert(alert);
            self.alerts.push(alert.clone());
        }
        raised
    }

    /// Derives the frozen reference rate and its confidence interval
    /// from the accumulated reference segment.
    fn freeze_reference(&mut self) {
        self.baseline = self.ref_count as f64 / self.ref_exposure;
        let (lo, hi) = (self.cfg.interval)(self.ref_count, self.cfg.drift_confidence);
        self.baseline_lower = lo / self.ref_exposure;
        self.baseline_upper = hi / self.ref_exposure;
        self.armed = true;
    }

    /// Two-sided Poisson CUSUM against the frozen reference. For a
    /// sample with count `n` over exposure `t` the log-likelihood-ratio
    /// increment for a shift to `λ₀(1±δ)` is
    /// `n·ln(1±δ) ∓ λ₀·δ·t`; each side accumulates
    /// `s = max(0, s + llr)` and alarms at `s > h`.
    fn cusum_step(
        &mut self,
        index: u64,
        ts_nanos: u64,
        count: u64,
        exposure_seconds: f64,
    ) -> Option<Alert> {
        let n = count as f64;
        let lam_t = self.baseline * exposure_seconds;
        let delta = self.cfg.cusum_delta;
        let llr_up = n * (1.0 + delta).ln() - lam_t * delta;
        let llr_dn = n * (1.0 - delta).ln() + lam_t * delta;
        self.s_up = (self.s_up + llr_up).max(0.0);
        self.s_dn = (self.s_dn + llr_dn).max(0.0);
        let (kind, onset) = if self.s_up > self.cfg.cusum_threshold {
            (AlertKind::StepUp, self.up_onset)
        } else if self.s_dn > self.cfg.cusum_threshold {
            (AlertKind::StepDown, self.dn_onset)
        } else {
            if self.s_up == 0.0 {
                self.up_onset = index + 1;
            }
            if self.s_dn == 0.0 {
                self.dn_onset = index + 1;
            }
            return None;
        };
        let observed_rate = self
            .segment_rate(onset, count, exposure_seconds)
            .unwrap_or(n / exposure_seconds);
        let alert = Alert {
            kind,
            onset_index: onset.min(index),
            detected_index: index,
            ts_nanos,
            baseline_rate: self.baseline,
            observed_rate,
            magnitude: observed_rate / self.baseline - 1.0,
        };
        self.begin_rewarm(index);
        Some(alert)
    }

    /// Drift detector: a [`MonitorConfig::drift_run`]-long run of
    /// sliding-window intervals disjoint from the baseline interval.
    fn drift_step(
        &mut self,
        index: u64,
        ts_nanos: u64,
        window_rate: f64,
        window_lower: f64,
        window_upper: f64,
    ) -> Option<Alert> {
        let full_window = self.recent.len() >= self.cfg.window;
        let disjoint =
            full_window && (window_lower > self.baseline_upper || window_upper < self.baseline_lower);
        if !disjoint {
            self.drift_hits = 0;
            return None;
        }
        if self.drift_hits == 0 {
            self.drift_onset = index;
        }
        self.drift_hits += 1;
        if self.drift_hits < self.cfg.drift_run {
            return None;
        }
        let onset = self
            .drift_onset
            .saturating_sub(self.cfg.window as u64 - 1);
        let alert = Alert {
            kind: AlertKind::Drift,
            onset_index: onset,
            detected_index: index,
            ts_nanos,
            baseline_rate: self.baseline,
            observed_rate: window_rate,
            magnitude: window_rate / self.baseline - 1.0,
        };
        self.begin_rewarm(index);
        Some(alert)
    }

    /// Mean rate over samples `[onset, now]` using whatever of that span
    /// the ring buffer still holds, including the current sample (which
    /// is not yet in the buffer).
    fn segment_rate(&self, onset: u64, count: u64, exposure_seconds: f64) -> Option<f64> {
        let mut c = count;
        let mut e = exposure_seconds;
        for p in self.iter_points() {
            if p.index >= onset {
                c += p.count;
                e += p.exposure_seconds;
            }
        }
        (e > 0.0).then(|| c as f64 / e)
    }

    /// Disarms the detectors after an alert: the reference segment and
    /// the sliding window restart empty so the monitor re-learns its
    /// baseline from post-change samples only (another full
    /// [`MonitorConfig::warmup`] before the detectors re-arm). A single
    /// clean step therefore raises exactly one alert.
    fn begin_rewarm(&mut self, index: u64) {
        self.armed = false;
        self.ref_count = 0;
        self.ref_exposure = 0.0;
        self.ref_samples = 0;
        self.recent.clear();
        self.win_count = 0;
        self.win_exposure = 0.0;
        self.s_up = 0.0;
        self.s_dn = 0.0;
        self.up_onset = index + 1;
        self.dn_onset = index + 1;
        self.drift_hits = 0;
    }

    fn push_point(&mut self, point: RatePoint) {
        if self.points.len() < self.cfg.capacity {
            self.points.push(point);
        } else {
            self.points[self.start] = point;
            self.start = (self.start + 1) % self.cfg.capacity;
        }
    }

    /// The retained points, oldest first.
    pub fn iter_points(&self) -> impl Iterator<Item = &RatePoint> {
        let (tail, head) = self.points.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// The most recent point, if any sample has been ingested.
    pub fn last_point(&self) -> Option<&RatePoint> {
        if self.points.is_empty() {
            None
        } else if self.start == 0 {
            self.points.last()
        } else {
            Some(&self.points[self.start - 1])
        }
    }

    /// Every alert raised so far, in detection order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Total samples ingested (including ones evicted from the ring).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Points currently held in the ring buffer.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True before the first valid sample.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recently frozen reference rate the detectors compare
    /// against (0 until the first warmup completes; after an alert this
    /// becomes the re-learned post-change rate once re-warmup ends).
    pub fn reference_rate(&self) -> f64 {
        self.baseline
    }

    /// True once warmup has completed and the detectors are armed.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The EWMA display baseline (0 before the first sample).
    pub fn ewma_baseline(&self) -> f64 {
        self.ewma.unwrap_or(0.0)
    }

    /// Current sliding-window rate (counts per second).
    pub fn window_rate(&self) -> f64 {
        if self.win_exposure > 0.0 {
            self.win_count as f64 / self.win_exposure
        } else {
            0.0
        }
    }
}

/// Emits an alert as a WARN `tn_watch_alert` event through the tn-obs
/// sinks (stderr text + JSONL trace file when configured).
fn emit_alert(alert: &Alert) {
    crate::log::warn(
        "tn_watch_alert",
        &[
            ("kind", FieldValue::from(alert.kind.label())),
            ("onset_index", FieldValue::from(alert.onset_index)),
            ("detected_index", FieldValue::from(alert.detected_index)),
            ("baseline_rate", FieldValue::from(alert.baseline_rate)),
            ("observed_rate", FieldValue::from(alert.observed_rate)),
            ("magnitude", FieldValue::from(alert.magnitude)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_rng::Rng;

    fn hour(i: u64) -> u64 {
        i * 3_600_000_000_000
    }

    /// Deterministic Poisson sampler good enough for tests (inversion
    /// for small means, normal-ish accumulation for large ones is not
    /// needed — means stay modest via summed thinning).
    fn poisson(rng: &mut Rng, mean: f64) -> u64 {
        // Split large means so inversion stays numerically safe.
        if mean > 30.0 {
            let half = mean / 2.0;
            return poisson(rng, half) + poisson(rng, mean - half);
        }
        let limit = (-mean).exp();
        let mut product = rng.gen_f64();
        let mut n = 0u64;
        while product > limit {
            product *= rng.gen_f64();
            n += 1;
        }
        n
    }

    fn quiet() -> crate::level::Level {
        crate::level::Level::Error
    }

    #[test]
    fn warmup_raises_no_alerts_and_freezes_reference() {
        crate::log::set_level(Some(quiet()));
        let mut m = Monitor::new(MonitorConfig::default());
        for i in 0..32 {
            assert!(m.observe(hour(i), 500, 3600.0).is_empty());
        }
        let expect = 500.0 / 3600.0;
        assert!((m.reference_rate() - expect).abs() < 1e-12);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn clean_step_up_fires_exactly_once_with_correct_onset_sign_and_magnitude() {
        crate::log::set_level(Some(quiet()));
        let mut m = Monitor::new(MonitorConfig::default());
        let mut alerts = Vec::new();
        for i in 0..200u64 {
            let count = if i < 100 { 500 } else { 650 };
            alerts.extend(m.observe(hour(i), count, 3600.0));
        }
        assert_eq!(alerts.len(), 1, "one clean step must raise one alert");
        let a = &alerts[0];
        assert_eq!(a.kind, AlertKind::StepUp);
        assert_eq!(a.onset_index, 100, "onset pinned to the true change point");
        assert!(a.detected_index < 105, "detection within a few samples");
        assert!((a.magnitude - 0.3).abs() < 0.02, "magnitude ~= +30%: {}", a.magnitude);
        // After re-baselining, reference tracks the new level.
        assert!((m.reference_rate() - 650.0 / 3600.0).abs() / (650.0 / 3600.0) < 0.01);
    }

    #[test]
    fn clean_step_down_fires_with_negative_magnitude() {
        crate::log::set_level(Some(quiet()));
        let mut m = Monitor::new(MonitorConfig::default());
        let mut alerts = Vec::new();
        for i in 0..200u64 {
            let count = if i < 100 { 600 } else { 420 };
            alerts.extend(m.observe(hour(i), count, 3600.0));
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::StepDown);
        assert!(alerts[0].magnitude < -0.25, "{}", alerts[0].magnitude);
    }

    #[test]
    fn slow_drift_is_caught_by_the_overlap_test() {
        crate::log::set_level(Some(quiet()));
        // Very small CUSUM sensitivity so only the drift test can fire.
        let cfg = MonitorConfig {
            cusum_threshold: 1e12,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(cfg);
        let mut kinds = Vec::new();
        for i in 0..400u64 {
            // +0.25 counts per sample after warmup: a slow ramp.
            let count = 500 + i.saturating_sub(32) / 4;
            for a in m.observe(hour(i), count, 3600.0) {
                kinds.push(a.kind);
            }
        }
        assert!(kinds.contains(&AlertKind::Drift), "ramp must raise a drift alert");
    }

    #[test]
    fn stationary_poisson_stays_quiet_across_seeds() {
        crate::log::set_level(Some(quiet()));
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from_u64(0xCAFE + seed);
            let mut m = Monitor::new(MonitorConfig::default());
            for i in 0..300u64 {
                let count = poisson(&mut rng, 480.0);
                let raised = m.observe(hour(i), count, 3600.0);
                assert!(
                    raised.is_empty(),
                    "seed {seed} sample {i}: spurious {:?}",
                    raised[0].kind
                );
            }
        }
    }

    #[test]
    fn ring_buffer_wraps_and_keeps_newest_points_in_order() {
        crate::log::set_level(Some(quiet()));
        let cfg = MonitorConfig {
            capacity: 8,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(cfg);
        for i in 0..20u64 {
            m.observe(hour(i), 100 + i, 3600.0);
        }
        assert_eq!(m.len(), 8);
        assert_eq!(m.seen(), 20);
        let idx: Vec<u64> = m.iter_points().map(|p| p.index).collect();
        assert_eq!(idx, (12..20).collect::<Vec<u64>>());
        assert_eq!(m.last_point().expect("points").count, 119);
    }

    #[test]
    fn zero_or_invalid_exposure_is_ignored() {
        crate::log::set_level(Some(quiet()));
        let mut m = Monitor::new(MonitorConfig::default());
        assert!(m.observe(0, 10, 0.0).is_empty());
        assert!(m.observe(0, 10, -1.0).is_empty());
        assert!(m.observe(0, 10, f64::NAN).is_empty());
        assert_eq!(m.seen(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn identical_streams_produce_identical_timelines() {
        crate::log::set_level(Some(quiet()));
        let run = || {
            let mut rng = Rng::seed_from_u64(7);
            let mut m = Monitor::new(MonitorConfig::default());
            let mut out = String::new();
            for i in 0..150u64 {
                let count = poisson(&mut rng, 350.0) + if i >= 90 { 120 } else { 0 };
                for a in m.observe(hour(i), count, 3600.0) {
                    out.push_str(&format!(
                        "{} {} {} {:.12}\n",
                        a.kind.label(),
                        a.onset_index,
                        a.detected_index,
                        a.magnitude
                    ));
                }
            }
            for p in m.iter_points() {
                out.push_str(&format!("{} {:.12} {:.12}\n", p.index, p.window_rate, p.baseline));
            }
            out
        };
        assert_eq!(run(), run(), "timeline must be byte-identical across runs");
    }

    #[test]
    fn normal_interval_brackets_the_count() {
        let (lo, hi) = normal_interval(400, 0.99);
        assert!(lo < 400.0 && hi > 400.0);
        assert!(lo > 340.0 && hi < 460.0, "{lo} {hi}");
        let (lo0, _) = normal_interval(0, 0.99);
        assert_eq!(lo0, 0.0);
        // Acklam sanity: Φ⁻¹(0.975) ≈ 1.96.
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
    }
}
