//! The shared metrics registry: named counters and histograms plus
//! one-call Prometheus text rendering.
//!
//! There is one [`global`] registry for process-wide instrumentation
//! (transport shards, pipeline spans) and any number of local ones
//! (each `tn-server` instance owns its own for per-endpoint series).
//! `/metrics` and the CLI `profile` report both read these registries,
//! so every consumer sees the same numbers.

use crate::hist::{Histogram, Snapshot, Unit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a counter's `u64` is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterUnit {
    /// Plain integer count.
    Count,
    /// The value is nanoseconds; rendered as (float) seconds.
    NanosAsSeconds,
}

/// A monotonically increasing named counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    unit: CounterUnit,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current raw value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn render_into(&self, out: &mut String) {
        let labels = render_labels(&self.labels);
        match self.unit {
            CounterUnit::Count => {
                out.push_str(&format!("{}{labels} {}\n", self.name, self.get()));
            }
            CounterUnit::NanosAsSeconds => {
                out.push_str(&format!("{}{labels} {:e}\n", self.name, self.get() as f64 / 1e9));
            }
        }
    }
}

/// A named gauge holding an `f64` that can move in both directions.
///
/// The value is stored as its IEEE-754 bit pattern in an `AtomicU64`, so
/// `set`/`get` are lock-free and safe to call from any thread.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    value: AtomicU64,
}

impl Gauge {
    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.value.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.value.load(Ordering::Relaxed))
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn render_into(&self, out: &mut String) {
        let labels = render_labels(&self.labels);
        let v = self.get();
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{}{labels} {}\n", self.name, v as i64));
        } else {
            out.push_str(&format!("{}{labels} {:e}\n", self.name, v));
        }
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// One entry of [`Registry::histogram_snapshots`]: `(name, labels,
/// snapshot)`.
pub type HistogramSnapshot = (String, Vec<(String, String)>, Snapshot);

/// A collection of counters and histograms rendered together.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<Arc<Counter>>>,
    gauges: Mutex<Vec<Arc<Gauge>>>,
    histograms: Mutex<Vec<Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// Returns the counter with this name and label set, creating it on
    /// first use. `help`/`unit` are fixed by the first creation.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        unit: CounterUnit,
    ) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("registry poisoned");
        if let Some(c) = counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, labels))
        {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            unit,
            value: AtomicU64::new(0),
        });
        counters.push(Arc::clone(&c));
        c
    }

    /// Returns the gauge with this name and label set, creating it on
    /// first use (initial value `0.0`). `help` is fixed by the first
    /// creation.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("registry poisoned");
        if let Some(g) = gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, labels))
        {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: AtomicU64::new(0f64.to_bits()),
        });
        gauges.push(Arc::clone(&g));
        g
    }

    /// Returns the histogram with this name and label set, creating it
    /// on first use. `help`/`unit` are fixed by the first creation.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        unit: Unit,
    ) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("registry poisoned");
        if let Some(h) = histograms
            .iter()
            .find(|h| h.name() == name && labels_match(h.labels(), labels))
        {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(name, help, labels, unit));
        histograms.push(Arc::clone(&h));
        h
    }

    /// Named snapshots of every histogram, for timing reports: each entry
    /// is `(name, labels, snapshot)` in registration order.
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        let histograms = self.histograms.lock().expect("registry poisoned");
        histograms
            .iter()
            .map(|h| (h.name().to_string(), h.labels().to_vec(), h.snapshot()))
            .collect()
    }

    /// Renders every metric in Prometheus text exposition format, with
    /// one `# HELP`/`# TYPE` block per metric name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let counters = self.counters.lock().expect("registry poisoned");
        let mut seen: Vec<&str> = Vec::new();
        for c in counters.iter() {
            if !seen.contains(&c.name.as_str()) {
                seen.push(&c.name);
                out.push_str(&format!("# HELP {} {}\n# TYPE {} counter\n", c.name, c.help, c.name));
            }
            c.render_into(&mut out);
        }
        drop(counters);
        let gauges = self.gauges.lock().expect("registry poisoned");
        let mut seen: Vec<&str> = Vec::new();
        for g in gauges.iter() {
            if !seen.contains(&g.name.as_str()) {
                seen.push(&g.name);
                out.push_str(&format!("# HELP {} {}\n# TYPE {} gauge\n", g.name, g.help, g.name));
            }
            g.render_into(&mut out);
        }
        drop(gauges);
        let histograms = self.histograms.lock().expect("registry poisoned");
        let mut seen: Vec<&str> = Vec::new();
        for h in histograms.iter() {
            if !seen.contains(&h.name()) {
                seen.push(h.name());
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} histogram\n",
                    h.name(),
                    h.help(),
                    h.name()
                ));
            }
            h.render_into(&mut out);
        }
        out
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// The process-wide registry (transport shards, span durations, …).
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_get_or_create_dedupes_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("tn_x_total", &[("k", "a")], "help", CounterUnit::Count);
        let b = r.counter("tn_x_total", &[("k", "a")], "help", CounterUnit::Count);
        let c = r.counter("tn_x_total", &[("k", "b")], "help", CounterUnit::Count);
        a.add(2);
        b.inc();
        c.inc();
        assert_eq!(a.get(), 3, "same series shares the cell");
        assert_eq!(c.get(), 1);
        let text = r.render_prometheus();
        assert!(text.contains("tn_x_total{k=\"a\"} 3"), "{text}");
        assert!(text.contains("tn_x_total{k=\"b\"} 1"), "{text}");
        assert_eq!(text.matches("# HELP tn_x_total").count(), 1, "{text}");
    }

    #[test]
    fn gauge_sets_and_renders_with_gauge_type() {
        let r = Registry::new();
        let g = r.gauge("tn_level", &[("k", "a")], "current level");
        let g2 = r.gauge("tn_level", &[("k", "a")], "current level");
        g.set(3.5);
        assert_eq!(g2.get(), 3.5, "same series shares the cell");
        g.set(12.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE tn_level gauge"), "{text}");
        assert!(text.contains("tn_level{k=\"a\"} 12\n"), "{text}");
    }

    #[test]
    fn nanos_counter_renders_as_seconds() {
        let r = Registry::new();
        r.counter("tn_t_seconds_total", &[], "h", CounterUnit::NanosAsSeconds)
            .add(2_500_000_000);
        assert!(r.render_prometheus().contains("tn_t_seconds_total 2.5e0"));
    }

    #[test]
    fn histograms_render_with_type_header() {
        let r = Registry::new();
        r.histogram("tn_h_seconds", &[("s", "x")], "h", Unit::Nanos)
            .observe(1000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE tn_h_seconds histogram"), "{text}");
        assert!(text.contains("tn_h_seconds_count{s=\"x\"} 1"), "{text}");
    }
}
