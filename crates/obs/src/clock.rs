//! Monotonic time source with injectable implementations.
//!
//! Telemetry reads time through one process-wide [`Clock`] so tests can
//! install a [`VirtualClock`] and observe deterministic timestamps and
//! span durations. The clock is strictly an *output* concern: nothing in
//! the simulation ever reads it, which is what keeps instrumented runs
//! byte-identical to uninstrumented ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonic nanosecond counter.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin (process start for the
    /// real clock). Must never decrease.
    fn now_nanos(&self) -> u64;
}

/// The production clock: `Instant`-based, origin at first use.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        process_epoch().elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests: time moves only when told to.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at `start` nanoseconds.
    pub fn starting_at(start: u64) -> Self {
        Self {
            nanos: AtomicU64::new(start),
        }
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

fn clock_slot() -> &'static RwLock<Arc<dyn Clock>> {
    static CLOCK: OnceLock<RwLock<Arc<dyn Clock>>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(Arc::new(RealClock)))
}

/// Installs the process-wide clock (tests: a shared [`VirtualClock`]).
pub fn set_clock(clock: Arc<dyn Clock>) {
    *clock_slot().write().expect("clock lock poisoned") = clock;
}

/// Reads the process-wide clock.
pub fn now_nanos() -> u64 {
    clock_slot().read().expect("clock lock poisoned").now_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock;
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_on_advance() {
        let c = VirtualClock::starting_at(100);
        assert_eq!(c.now_nanos(), 100);
        c.advance(50);
        assert_eq!(c.now_nanos(), 150);
        assert_eq!(c.now_nanos(), 150);
    }
}
