//! Severity levels for structured events.

use std::fmt;
use std::str::FromStr;

/// Event severity, most severe first. The numeric representation orders
/// severities so `Trace` includes everything and `Error` almost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The operation failed; data may be missing.
    Error = 0,
    /// Something surprising that the process survived.
    Warn = 1,
    /// One line per externally meaningful action (request, run, …).
    Info = 2,
    /// Per-stage detail: span closures, cache decisions.
    Debug = 3,
    /// Everything, including per-shard and per-call chatter.
    Trace = 4,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// The canonical lowercase name (`"error"`, …, `"trace"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error, warn, info, debug, trace or off)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn parse_round_trips() {
        for l in Level::ALL {
            assert_eq!(l.as_str().parse::<Level>(), Ok(l));
        }
        assert_eq!("WARNING".parse::<Level>(), Ok(Level::Warn));
        assert!("loud".parse::<Level>().is_err());
    }
}
