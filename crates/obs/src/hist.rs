//! Log-bucketed histograms: lock-free to record, cheap to render.
//!
//! Values are `u64`s (latencies in nanoseconds, sizes in bytes) dropped
//! into power-of-two buckets — bucket `i` covers `[2^i, 2^(i+1))`, with
//! 0 and 1 sharing bucket 0 — so recording is a `leading_zeros` plus one
//! relaxed `fetch_add`. Sixty-four buckets span the full `u64` range:
//! sub-microsecond spans and multi-hour campaigns land in one type.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (the full `u64` range).
pub const BUCKETS: usize = 64;

/// What the recorded `u64`s mean — controls Prometheus rendering only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Nanoseconds, rendered as seconds (`le` boundaries divided by 1e9).
    Nanos,
    /// Bytes, rendered as-is.
    Bytes,
    /// Dimensionless counts, rendered as-is.
    Count,
}

fn bucket_index(value: u64) -> usize {
    63 - value.max(1).leading_zeros() as usize
}

/// A named, labelled, lock-free log₂ histogram.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    unit: Unit,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(name: &str, help: &str, labels: &[(&str, &str)], unit: Unit) -> Self {
        Self {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            unit,
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The help line.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// The label set.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The rendering unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Renders this histogram's series (no `# HELP`/`# TYPE` lines —
    /// the [`crate::Registry`] emits those once per metric name).
    ///
    /// Cumulative `_bucket` lines are emitted at every non-empty bucket
    /// boundary plus `+Inf` (a sparse but valid `le` set), then `_sum`
    /// and `_count`.
    pub fn render_into(&self, out: &mut String) {
        let snap = self.snapshot();
        let scale = match self.unit {
            Unit::Nanos => 1e-9,
            Unit::Bytes | Unit::Count => 1.0,
        };
        let mut cumulative = 0u64;
        for (i, &n) in snap.buckets.iter().enumerate() {
            // The last bucket's boundary is +Inf, emitted once below.
            if n == 0 || i == BUCKETS - 1 {
                continue;
            }
            cumulative += n;
            let le = (1u128 << (i + 1)) as f64 * scale;
            out.push_str(&self.series_line("_bucket", Some(le), cumulative as f64));
        }
        out.push_str(&self.series_line("_bucket", Some(f64::INFINITY), snap.count as f64));
        out.push_str(&self.series_line("_sum", None, snap.sum as f64 * scale));
        out.push_str(&self.series_line("_count", None, snap.count as f64));
    }

    fn series_line(&self, suffix: &str, le: Option<f64>, value: f64) -> String {
        let mut labels = String::new();
        for (k, v) in &self.labels {
            if !labels.is_empty() {
                labels.push(',');
            }
            labels.push_str(&format!("{k}=\"{v}\""));
        }
        if let Some(le) = le {
            if !labels.is_empty() {
                labels.push(',');
            }
            if le.is_infinite() {
                labels.push_str("le=\"+Inf\"");
            } else {
                labels.push_str(&format!("le=\"{le:e}\""));
            }
        }
        if labels.is_empty() {
            format!("{}{suffix} {value}\n", self.name)
        } else {
            format!("{}{suffix}{{{labels}}} {value}\n", self.name)
        }
    }
}

/// An immutable copy of a histogram's counters, supporting deltas and
/// quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Snapshot {
    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The observations recorded since `earlier` was taken.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier (counts went down).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        assert!(
            self.count >= earlier.count,
            "snapshot delta: earlier snapshot has more observations"
        );
        Snapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a - b)
                .collect(),
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the containing power-of-two bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative as f64;
            cumulative += n;
            if cumulative as f64 >= rank {
                let lower = if i == 0 { 0.0 } else { (1u128 << i) as f64 };
                let upper = (1u128 << (i + 1)) as f64;
                let fraction = (rank - before) / n as f64;
                return lower + fraction * (upper - lower);
            }
        }
        (1u128 << BUCKETS) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn observe_accumulates_count_and_sum() {
        let h = Histogram::new("t", "test", &[], Unit::Nanos);
        h.observe(10);
        h.observe(1000);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 1010);
        assert_eq!(s.mean(), 505.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new("t", "test", &[], Unit::Count);
        for v in [4u64, 5, 6, 7] {
            h.observe(v); // all in bucket [4, 8)
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        assert!((4.0..8.0).contains(&p50), "p50 = {p50}");
        // p100 reaches the bucket's upper edge.
        assert_eq!(s.quantile(1.0), 8.0);
        // An empty histogram quantile is 0.
        assert_eq!(Histogram::new("e", "", &[], Unit::Count).snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn delta_isolates_new_observations() {
        let h = Histogram::new("t", "test", &[], Unit::Nanos);
        h.observe(100);
        let before = h.snapshot();
        h.observe(200);
        h.observe(300);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 500);
    }

    #[test]
    fn render_is_cumulative_and_scaled() {
        let h = Histogram::new("tn_test_seconds", "help", &[("k", "v")], Unit::Nanos);
        h.observe(1_000); // ~1 us
        h.observe(2_000_000); // ~2 ms
        let mut out = String::new();
        h.render_into(&mut out);
        assert!(out.contains("tn_test_seconds_bucket{k=\"v\",le=\"+Inf\"} 2"), "{out}");
        assert!(out.contains("tn_test_seconds_count{k=\"v\"} 2"), "{out}");
        // Sum is rendered in seconds.
        assert!(out.contains("tn_test_seconds_sum{k=\"v\"} 0.002001"), "{out}");
        // Cumulative counts never decrease down the bucket list.
        let mut last = 0.0;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{out}");
            last = v;
        }
    }
}
