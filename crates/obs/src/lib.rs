//! # tn-obs — observability for the thermal-neutron stack
//!
//! A hermetic (zero-dependency, `std`-only) telemetry layer shared by the
//! CLI, the transport kernel, the pipeline and `tn-server`:
//!
//! * **Leveled structured events** ([`emit`], [`Level`]): ERROR..TRACE,
//!   filtered by `TN_LOG` / `--log-level`, rendered as `key=value` text on
//!   stderr and/or as JSON Lines to a trace file (`--trace-out`). Every
//!   JSONL record carries `ts`, `level`, `span` and `msg`.
//! * **Hierarchical spans** ([`span`]): RAII guards forming a thread-local
//!   `parent/child` path. Closing a span records its duration into the
//!   global [`Registry`] (`tn_span_seconds{span=...}`) and, at DEBUG and
//!   below, emits a `span_end` event.
//! * **A monotonic [`Clock`] trait**: [`RealClock`] in production, a
//!   deterministic [`VirtualClock`] for tests. Telemetry only *reads* the
//!   clock — spans and events never feed back into simulation state, so
//!   instrumented runs stay byte-identical (`tests/determinism.rs` pins
//!   this at TRACE vs OFF).
//! * **Log-bucketed [`Histogram`]s** with power-of-two buckets, snapshot
//!   deltas, quantile estimation, and Prometheus text rendering through
//!   the shared [`Registry`] (`Registry::render_prometheus`), plus
//!   free-moving [`Gauge`]s.
//! * **Timeline telemetry** ([`timeline`]): fixed-capacity ring-buffer
//!   count-rate timelines, sliding-window estimators with injectable
//!   confidence intervals, EWMA baselines, and online change-point
//!   detection (two-sided Poisson CUSUM + interval-overlap drift test)
//!   raising structured [`Alert`]s through the event sinks.
//!
//! ## Example
//!
//! ```
//! use tn_obs as obs;
//!
//! obs::set_level(Some(obs::Level::Info));
//! let _root = obs::span("example");
//! {
//!     let _child = obs::span("example.step");
//!     obs::info("step done", &[("items", 42u64.into())]);
//! } // closing the span records tn_span_seconds{span="example/example.step"}
//! let text = obs::global().render_prometheus();
//! assert!(text.contains("tn_span_seconds_bucket"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod clock;
pub mod hist;
pub mod level;
pub mod log;
pub mod registry;
pub mod span;
pub mod timeline;

pub use clock::{now_nanos, set_clock, Clock, RealClock, VirtualClock};
pub use hist::{Histogram, Snapshot, Unit};
pub use level::Level;
pub use log::{
    debug, emit, enabled, error, info, level, set_level, set_level_str, set_stderr,
    set_trace_file, trace, warn, FieldValue,
};
pub use registry::{global, Counter, CounterUnit, Gauge, HistogramSnapshot, Registry};
pub use span::{current_span_path, span, SpanGuard};
pub use timeline::{
    normal_interval, Alert, AlertKind, IntervalFn, Monitor, MonitorConfig, RatePoint,
};
