//! Hierarchical spans: RAII timing guards forming a thread-local path.
//!
//! `span("pipeline")` then `span("pipeline.campaigns")` yields the path
//! `pipeline/pipeline.campaigns`; closing a guard records its wall-clock
//! duration into the global registry histogram
//! `tn_span_seconds{span="<path>"}` (the source the CLI `profile` report
//! and `/metrics` read) and, when DEBUG is enabled, emits a `span_end`
//! event. Spans read the injectable [`crate::Clock`] and write only to
//! telemetry: they can never influence simulation output.

use crate::clock;
use crate::hist::Unit;
use crate::level::Level;
use crate::log::{emit_at, enabled};
use crate::registry::global;
use std::cell::RefCell;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The `/`-joined path of open spans on this thread (`"root"` if none).
pub fn current_span_path() -> String {
    STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            "root".to_string()
        } else {
            stack.join("/")
        }
    })
}

/// Opens a span; the returned guard closes it on drop.
///
/// Guards must drop in reverse open order (the natural lexical-scope
/// usage). Dropping out of order corrupts only the *path labels*, never
/// simulation state.
pub fn span(name: &str) -> SpanGuard {
    STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
    SpanGuard {
        start_nanos: clock::now_nanos(),
    }
}

/// An open span; see [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    start_nanos: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let duration = clock::now_nanos().saturating_sub(self.start_nanos);
        let path = current_span_path();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        global()
            .histogram(
                "tn_span_seconds",
                &[("span", &path)],
                "Wall-clock span durations, by hierarchical span path.",
                Unit::Nanos,
            )
            .observe(duration);
        if enabled(Level::Debug) {
            emit_at(
                Level::Debug,
                &path,
                "span_end",
                &[("dur_ns", duration.into())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{set_clock, VirtualClock};
    use std::sync::Arc;

    #[test]
    fn spans_nest_into_paths() {
        assert_eq!(current_span_path(), "root");
        let _a = span("alpha");
        assert_eq!(current_span_path(), "alpha");
        {
            let _b = span("beta");
            assert_eq!(current_span_path(), "alpha/beta");
        }
        assert_eq!(current_span_path(), "alpha");
    }

    #[test]
    fn span_durations_come_from_the_injected_clock() {
        let clock = Arc::new(VirtualClock::starting_at(1_000));
        set_clock(clock.clone());
        {
            let _s = span("timed.virtual");
            clock.advance(5_000);
        }
        set_clock(Arc::new(crate::clock::RealClock));
        let snapshots = global().histogram_snapshots();
        let (_, _, snap) = snapshots
            .iter()
            .find(|(name, labels, _)| {
                name == "tn_span_seconds"
                    && labels.iter().any(|(_, v)| v == "timed.virtual")
            })
            .expect("span histogram registered");
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum(), 5_000);
    }
}
