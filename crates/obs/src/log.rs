//! The structured event layer: level filter, stderr text sink and JSONL
//! file sink.
//!
//! An event is a level, a message and `key=value` fields; the current
//! span path (see [`crate::span`]) is attached automatically. The filter
//! defaults to `warn`, overridable by the `TN_LOG` environment variable
//! at first use or [`set_level`] / [`set_level_str`] (CLI `--log-level`)
//! at any time. Each JSONL record is one object per line with at least
//! `ts` (seconds, monotonic clock), `level`, `span` and `msg` — the
//! contract `scripts/ci.sh` validates with the in-tree JSON parser.

use crate::clock;
use crate::level::Level;
use crate::span::current_span_path;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// One typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}

impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(v.into())
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Threshold encoding: 0 = off, otherwise `level as u8 + 1`.
struct Logger {
    threshold: AtomicU8,
    stderr: AtomicBool,
    file: Mutex<Option<BufWriter<File>>>,
}

fn logger() -> &'static Logger {
    static LOGGER: OnceLock<Logger> = OnceLock::new();
    LOGGER.get_or_init(|| {
        let level = std::env::var("TN_LOG")
            .ok()
            .map(|raw| match raw.to_ascii_lowercase().as_str() {
                "off" | "none" | "0" => None,
                other => other.parse::<Level>().ok().or(Some(Level::Warn)),
            })
            .unwrap_or(Some(Level::Warn));
        Logger {
            threshold: AtomicU8::new(level.map_or(0, |l| l as u8 + 1)),
            stderr: AtomicBool::new(true),
            file: Mutex::new(None),
        }
    })
}

/// Sets the level filter (`None` disables all output).
pub fn set_level(level: Option<Level>) {
    logger()
        .threshold
        .store(level.map_or(0, |l| l as u8 + 1), Ordering::Relaxed);
}

/// Parses and applies a level name; `"off"` disables output. This is the
/// `--log-level` entry point.
pub fn set_level_str(s: &str) -> Result<(), String> {
    if s.eq_ignore_ascii_case("off") {
        set_level(None);
        return Ok(());
    }
    set_level(Some(s.parse::<Level>()?));
    Ok(())
}

/// The currently enabled level, if any.
pub fn level() -> Option<Level> {
    match logger().threshold.load(Ordering::Relaxed) {
        0 => None,
        n => Some(Level::ALL[(n - 1) as usize]),
    }
}

/// Whether events at `level` currently pass the filter. Cheap (one
/// relaxed atomic load): call before assembling expensive fields.
pub fn enabled(level: Level) -> bool {
    let threshold = logger().threshold.load(Ordering::Relaxed);
    threshold != 0 && (level as u8) < threshold
}

/// Enables or disables the stderr text sink (on by default).
pub fn set_stderr(on: bool) {
    logger().stderr.store(on, Ordering::Relaxed);
}

/// Opens (truncating) a JSONL trace file; every event passing the filter
/// is appended as one JSON object per line and flushed. This is the
/// `--trace-out` entry point. Pass-through errors: the caller decides
/// whether a missing trace file is fatal.
pub fn set_trace_file(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    *logger().file.lock().expect("trace sink poisoned") = Some(BufWriter::new(file));
    Ok(())
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_json_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => out.push_str(&v.to_string()),
        FieldValue::I64(v) => out.push_str(&v.to_string()),
        FieldValue::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(v) => {
            out.push('"');
            escape_json_into(out, v);
            out.push('"');
        }
    }
}

/// Emits one structured event at the current span path.
pub fn emit(level: Level, msg: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    emit_at(level, &current_span_path(), msg, fields);
}

/// Emits one structured event with an explicit span path (used by span
/// guards, which pop themselves off the stack before reporting).
pub(crate) fn emit_at(level: Level, span: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let ts = clock::now_nanos() as f64 / 1e9;
    let log = logger();

    if log.stderr.load(Ordering::Relaxed) {
        let mut line = format!("[{ts:.6}] {:5} {span} {msg}", level.as_str().to_uppercase());
        for (key, value) in fields {
            match value {
                FieldValue::Str(s) => line.push_str(&format!(" {key}={s:?}")),
                other => line.push_str(&format!(" {key}={other}")),
            }
        }
        eprintln!("{line}");
    }

    let mut sink = log.file.lock().expect("trace sink poisoned");
    if let Some(file) = sink.as_mut() {
        let mut line = String::with_capacity(128);
        line.push_str(&format!("{{\"ts\":{ts:.6},\"level\":\""));
        line.push_str(level.as_str());
        line.push_str("\",\"span\":\"");
        escape_json_into(&mut line, span);
        line.push_str("\",\"msg\":\"");
        escape_json_into(&mut line, msg);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_json_into(&mut line, key);
            line.push_str("\":");
            push_json_value(&mut line, value);
        }
        line.push_str("}\n");
        // A full disk mustn't take the simulation down with it.
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }
}

/// Emits at [`Level::Error`].
pub fn error(msg: &str, fields: &[(&str, FieldValue)]) {
    emit(Level::Error, msg, fields);
}

/// Emits at [`Level::Warn`].
pub fn warn(msg: &str, fields: &[(&str, FieldValue)]) {
    emit(Level::Warn, msg, fields);
}

/// Emits at [`Level::Info`].
pub fn info(msg: &str, fields: &[(&str, FieldValue)]) {
    emit(Level::Info, msg, fields);
}

/// Emits at [`Level::Debug`].
pub fn debug(msg: &str, fields: &[(&str, FieldValue)]) {
    emit(Level::Debug, msg, fields);
}

/// Emits at [`Level::Trace`].
pub fn trace(msg: &str, fields: &[(&str, FieldValue)]) {
    emit(Level::Trace, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_by_severity() {
        // Tests in this binary share the global logger; exercise the
        // transitions and leave it off (quiet for the other tests).
        set_level(Some(Level::Info));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert_eq!(level(), Some(Level::Info));
        set_level(None);
        assert!(!enabled(Level::Error));
        assert_eq!(level(), None);
    }

    #[test]
    fn set_level_str_accepts_off_and_rejects_garbage() {
        assert!(set_level_str("oFF").is_ok());
        assert!(set_level_str("banana").is_err());
    }

    #[test]
    fn json_escaping_covers_control_chars() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn field_values_render_as_json() {
        let cases: Vec<(FieldValue, &str)> = vec![
            (1u64.into(), "1"),
            ((-3i64).into(), "-3"),
            (true.into(), "true"),
            ("x\"y".into(), "\"x\\\"y\""),
            (f64::NAN.into(), "null"),
        ];
        for (value, want) in cases {
            let mut out = String::new();
            push_json_value(&mut out, &value);
            assert_eq!(out, want);
        }
    }
}
