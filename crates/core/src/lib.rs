//! # tn-core — the thermal-neutron risk assessment pipeline
//!
//! The paper's contribution as a library: an end-to-end pipeline that
//!
//! 1. characterises every device's per-code SDC/DUE response with
//!    fault-injection campaigns ([`tn_fault_injection`]);
//! 2. "irradiates" each device+code pair on the simulated ChipIR and
//!    ROTAX beamlines ([`tn_beamline`]) and extracts high-energy and
//!    thermal cross sections with Poisson confidence intervals;
//! 3. forms the high-energy/thermal cross-section ratios (Figure 5);
//! 4. folds the cross sections with any terrestrial environment
//!    ([`tn_environment`]) to produce FIT rates and the thermal-neutron
//!    share of the total error rate ([`tn_fit`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use tn_core::{Pipeline, PipelineConfig};
//!
//! let report = Pipeline::new(PipelineConfig::default()).seed(42).run();
//! for device in report.devices() {
//!     println!("{}: HE/thermal SDC ratio = {:.2}", device.name, device.sdc_ratio());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod json;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod validation;

pub use json::Json;
pub use pipeline::{Pipeline, PipelineConfig};
pub use registry::{find_device, workloads_for, DeviceEntry};
pub use report::{DeviceReport, StudyReport};
pub use validation::{validate, Validation};

pub use tn_beamline as beamline;
pub use tn_obs as obs;
pub use tn_detector as detector;
pub use tn_devices as devices;
pub use tn_environment as environment;
pub use tn_fault_injection as fault_injection;
pub use tn_fit as fit;
pub use tn_physics as physics;
pub use tn_transport as transport;
pub use tn_workloads as workloads;
