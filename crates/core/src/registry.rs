//! The device/workload pairing the paper uses: each device class runs the
//! codes that fit its computational character (Section III-B).

use tn_devices::{catalog, Device, DeviceKind};
use tn_workloads::{
    bfs::Bfs, ced::CannyEdge, hotspot::HotSpot, lavamd::LavaMd, lud::Lud, mnist::Mnist,
    mxm::MxM, sc::StreamCompaction, yolo::Yolo, Workload,
};

/// A study entry: one device plus the workloads it runs under beam.
pub struct DeviceEntry {
    /// The device model.
    pub device: Device,
    /// The workloads assigned to it.
    pub workloads: Vec<Box<dyn Workload>>,
}

impl std::fmt::Debug for DeviceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceEntry")
            .field("device", &self.device.name())
            .field(
                "workloads",
                &self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Instantiates the paper's workload set for a device kind, sized for
/// fast campaigns (`seed` controls every input).
///
/// * Xeon Phi and GPUs run the HPC set (MxM, LUD, LavaMD, HotSpot);
///   GPUs additionally run YOLO (the paper's CNN-on-GPU case).
/// * The APU configurations run the heterogeneous set (SC, CED, BFS).
/// * The FPGA runs MNIST only ("a minimal network that would not
///   exercise sufficient resources on GPUs or Xeon Phis").
pub fn workloads_for(kind: DeviceKind, seed: u64) -> Vec<Box<dyn Workload>> {
    let hpc: Vec<Box<dyn Workload>> = vec![
        Box::new(MxM::new(24, seed)),
        Box::new(Lud::new(24, seed ^ 1)),
        Box::new(LavaMd::new(2, 8, seed ^ 2)),
        Box::new(HotSpot::new(16, 24, seed ^ 3)),
    ];
    match kind {
        DeviceKind::ManyCore => hpc,
        DeviceKind::Gpu => {
            let mut w = hpc;
            w.push(Box::new(Yolo::new(seed ^ 4)));
            w
        }
        DeviceKind::ApuCpu | DeviceKind::ApuGpu | DeviceKind::ApuHybrid => vec![
            Box::new(StreamCompaction::new(256, seed ^ 5)),
            Box::new(CannyEdge::new(48, 48, seed ^ 6)),
            Box::new(Bfs::new(12, seed ^ 7)),
        ],
        DeviceKind::Fpga => vec![Box::new(Mnist::new(1, seed ^ 8))],
    }
}

/// Looks a catalog device up by display name (case-insensitive), e.g.
/// for resolving the `device` field of an API request.
///
/// The catalog is deterministic and immutable, but *building* it is not
/// cheap — each device fits its ¹⁰B population against the reference
/// beam spectra — so it is constructed once per process and served from
/// a `OnceLock` thereafter. Hot callers (the fleet bulk endpoint
/// resolves a device per entry per request) rely on this being a map
/// scan, not a refit.
pub fn find_device(name: &str) -> Option<Device> {
    static CATALOG: std::sync::OnceLock<Vec<Device>> = std::sync::OnceLock::new();
    CATALOG
        .get_or_init(catalog::all_compute_devices)
        .iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .cloned()
}

/// Builds the full study roster: every catalog device with its codes.
pub fn full_roster(seed: u64) -> Vec<DeviceEntry> {
    catalog::all_compute_devices()
        .into_iter()
        .map(|device| {
            let workloads = workloads_for(device.kind(), seed);
            DeviceEntry { device, workloads }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_all_devices() {
        let roster = full_roster(1);
        assert_eq!(roster.len(), 8);
    }

    #[test]
    fn pairing_follows_the_paper() {
        let names = |kind| {
            workloads_for(kind, 1)
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(DeviceKind::ManyCore), ["MxM", "LUD", "LavaMD", "HotSpot"]);
        assert_eq!(
            names(DeviceKind::Gpu),
            ["MxM", "LUD", "LavaMD", "HotSpot", "YOLO"]
        );
        assert_eq!(names(DeviceKind::ApuHybrid), ["SC", "CED", "BFS"]);
        assert_eq!(names(DeviceKind::Fpga), ["MNIST"]);
    }

    #[test]
    fn device_lookup_is_case_insensitive() {
        assert!(find_device("NVIDIA K20").is_some());
        assert!(find_device("nvidia k20").is_some());
        assert!(find_device("PDP-11").is_none());
    }

    #[test]
    fn workloads_are_runnable() {
        for entry in full_roster(2) {
            for w in &entry.workloads {
                assert!(!w.golden().is_empty(), "{} golden empty", w.name());
            }
        }
    }
}
