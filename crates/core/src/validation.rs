//! Study-report validation: checks a [`StudyReport`] against the device
//! catalog's calibration targets and flags drift — the regression harness
//! a long-lived reproduction needs (model edits that silently break a
//! published anchor show up here, not in a reviewer's eye).

use crate::report::StudyReport;
use tn_devices::catalog::all_compute_devices;
use tn_devices::response::ErrorClass;

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Device the finding concerns.
    pub device: String,
    /// Human-readable description.
    pub message: String,
    /// Relative deviation that triggered it.
    pub deviation: f64,
}

/// Result of validating a study report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Validation {
    /// Checks that ran.
    pub checks: usize,
    /// Anchors that drifted beyond tolerance.
    pub findings: Vec<Finding>,
}

impl Validation {
    /// Whether every anchor held.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Validates a report against the catalog's Figure-5 targets.
///
/// `tolerance` is the allowed relative deviation of a measured ratio from
/// its calibration target (counting noise at default beam times sits well
/// under 0.25).
///
/// # Panics
///
/// Panics if `tolerance` is not strictly positive.
pub fn validate(report: &StudyReport, tolerance: f64) -> Validation {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut out = Validation::default();
    for device in all_compute_devices() {
        let Some(measured) = report.device(device.name()) else {
            out.findings.push(Finding {
                device: device.name().to_string(),
                message: "device missing from study".into(),
                deviation: f64::INFINITY,
            });
            continue;
        };
        let (sdc_target, due_target) = device.target_ratios();
        out.checks += 1;
        let sdc = measured.sdc_ratio();
        let sdc_dev = (sdc / sdc_target - 1.0).abs();
        if sdc_dev > tolerance {
            out.findings.push(Finding {
                device: device.name().to_string(),
                message: format!("SDC ratio {sdc:.2} vs target {sdc_target:.2}"),
                deviation: sdc_dev,
            });
        }
        match due_target {
            Some(target) => {
                out.checks += 1;
                let due = measured.due_ratio();
                let due_dev = (due / target - 1.0).abs();
                if due_dev > tolerance {
                    out.findings.push(Finding {
                        device: device.name().to_string(),
                        message: format!("DUE ratio {due:.2} vs target {target:.2}"),
                        deviation: due_dev,
                    });
                }
            }
            None => {
                // FPGA: the check is structural — zero DUE counts.
                out.checks += 1;
                let due_counts: u64 = measured
                    .chipir
                    .iter()
                    .chain(&measured.rotax)
                    .map(|r| r.due.count)
                    .sum();
                if due_counts > 0 {
                    out.findings.push(Finding {
                        device: device.name().to_string(),
                        message: format!("{due_counts} DUEs on a device that never DUEs"),
                        deviation: due_counts as f64,
                    });
                }
                // Also verify the catalog itself still says "no DUE".
                debug_assert!(device
                    .analytic_ratio(ErrorClass::Due)
                    .is_infinite());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};

    #[test]
    fn default_pipeline_validates_clean() {
        let report = Pipeline::new(PipelineConfig::default()).seed(2020).run();
        let v = validate(&report, 0.5);
        assert!(v.is_clean(), "findings: {:?}", v.findings);
        assert_eq!(v.checks, 16, "8 devices x 2 classes");
    }

    #[test]
    fn tight_tolerance_surfaces_counting_noise() {
        // At a 1% tolerance the Poisson noise of a quick run must trip
        // at least one anchor — proving the validator actually bites.
        let report = Pipeline::new(PipelineConfig::quick()).seed(3).run();
        let v = validate(&report, 0.01);
        assert!(!v.is_clean(), "1% tolerance should flag noise");
        for f in &v.findings {
            assert!(f.deviation > 0.01);
            assert!(!f.message.is_empty());
        }
    }

    #[test]
    fn empty_report_flags_every_device() {
        let empty = StudyReport::new(vec![], 0);
        let v = validate(&empty, 0.5);
        assert_eq!(v.findings.len(), 8);
        assert!(v.findings.iter().all(|f| f.deviation.is_infinite()));
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn zero_tolerance_rejected() {
        let report = StudyReport::new(vec![], 0);
        let _ = validate(&report, 0.0);
    }
}
