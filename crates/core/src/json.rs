//! Minimal JSON layer shared by report export and the `tn-server` API.
//!
//! The hermetic-build policy (DESIGN.md §6) keeps `serde` out of the
//! tree, so both directions are hand-rolled here:
//!
//! * **writing** — the `push_json_*` helpers append escaped fragments to
//!   a `String`; they started life in [`crate::report`] and moved here so
//!   the HTTP server and the report exporter share one escaping policy;
//! * **parsing** — [`parse`] is a recursive-descent parser producing the
//!   [`Json`] tree, used by the server to decode request bodies;
//! * **canonicalisation** — [`Json::to_canonical_string`] re-serialises a
//!   tree with object keys sorted and numbers in a fixed form, so two
//!   textually different but semantically identical requests map to the
//!   same cache key.
//!
//! Escaping covers *every* control character below `U+0020` (the common
//! ones as the two-character escapes `\n`, `\r`, `\t`, `\b`, `\f`; the
//! rest as `\u00XX`). Non-finite numbers have no JSON encoding and are
//! written as `null`; the parser consequently never produces a NaN or
//! infinity, which keeps round-trips total.

use std::collections::BTreeMap;
use std::fmt;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number in scientific notation (the report format);
/// non-finite values (e.g. an unbounded upper confidence limit) have no
/// JSON encoding and are emitted as `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:e}"));
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON number in canonical form: integral values in the exact
/// `i64` range print without exponent or fraction, everything else falls
/// back to [`push_json_f64`]. `-0.0` canonicalises to `0`.
pub fn push_json_num(out: &mut String, v: f64) {
    // 2^53: above this, f64 no longer represents every integer, so the
    // integer rendering would suggest more precision than the value has.
    if v.is_finite() && v == v.trunc() && v.abs() <= 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        push_json_f64(out, v);
    }
}

/// A parsed JSON value.
///
/// Object member order is preserved as parsed; lookups are linear, which
/// is fine for the request-sized documents this crate handles. Numbers
/// are stored as `f64` — JSON has a single number type — so integers are
/// exact up to 2⁵³ (see [`Json::as_u64`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: present only if
    /// this is a non-negative number with no fractional part within the
    /// exactly-representable range (≤ 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v)
                if *v >= 0.0 && v.trunc() == *v && *v <= 9.007_199_254_740_992e15 =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialises with object keys sorted lexicographically and numbers
    /// in canonical form — the cache-key representation: two requests
    /// that parse to the same tree always canonicalise to the same
    /// string, regardless of member order or number spelling.
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, true);
        out
    }

    fn write(&self, out: &mut String, canonical: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if canonical {
                    push_json_num(out, *v);
                } else {
                    push_json_f64(out, *v);
                }
            }
            Json::Str(s) => push_json_str(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out, canonical);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                if canonical {
                    let sorted: BTreeMap<&str, &Json> =
                        members.iter().map(|(k, v)| (k.as_str(), v)).collect();
                    for (i, (k, v)) in sorted.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_json_str(out, k);
                        out.push(':');
                        v.write(out, canonical);
                    }
                } else {
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_json_str(out, k);
                        out.push(':');
                        v.write(out, canonical);
                    }
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Serialises in document order (numbers in the report's scientific
    /// notation); use [`Json::to_canonical_string`] for cache keys.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, false);
        f.write_str(&out)
    }
}

/// A parse failure: byte offset into the input plus a human-readable
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts; documents deeper than
/// this are hostile, not data.
const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document (one value plus optional whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 64 levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar (the input is &str,
                    // so boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| {
                        self.error("invalid UTF-8 in string")
                    })?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            other => {
                self.pos -= 1;
                return Err(self.error(format!("unknown escape `\\{}`", other as char)));
            }
        })
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        let code = if (0xd800..=0xdbff).contains(&first) {
            // High surrogate: must pair with a following \uDC00..\uDFFF.
            if self.peek() != Some(b'\\') {
                return Err(self.error("unpaired high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.error("unpaired high surrogate"));
            }
            self.pos += 1;
            let second = self.hex4()?;
            if !(0xdc00..=0xdfff).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else if (0xdc00..=0xdfff).contains(&first) {
            return Err(self.error("unpaired low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.error("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        let v: f64 = text
            .parse()
            .map_err(|_| self.error(format!("unparseable number `{text}`")))?;
        Ok(Json::Num(v))
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected a digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }
}

/// Serialises documents as JSONL: one canonical line per document, each
/// terminated by `\n`.
///
/// This framing is sound because [`push_json_str`] escapes *every*
/// control character below `0x20` — a string containing a raw newline is
/// written as `\n` (two bytes), so a canonical line can never span more
/// than one physical line.
pub fn to_jsonl(docs: &[Json]) -> String {
    let mut out = String::with_capacity(docs.len() * 64);
    for doc in docs {
        out.push_str(&doc.to_canonical_string());
        out.push('\n');
    }
    out
}

/// Parses JSONL text: one document per non-blank line.
///
/// Blank lines (empty or whitespace-only) are skipped, so snapshots
/// survive trailing newlines and hand edits. A malformed line fails the
/// whole parse with its 1-based line number in the error message.
pub fn parse_jsonl(input: &str) -> Result<Vec<Json>, JsonError> {
    let mut docs = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse(line).map_err(|e| JsonError {
            message: format!("line {}: {}", i + 1, e.message),
            offset: e.offset,
        })?;
        docs.push(doc);
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial documents for the JSONL round-trip: embedded
    /// newlines and carriage returns in strings (both as keys and as
    /// values), every other sub-0x20 control character, and deep-ish
    /// nesting — everything that could break line framing.
    fn adversarial_docs() -> Vec<Json> {
        let all_controls: String = (0u8..0x20).map(|b| b as char).collect();
        vec![
            Json::Object(vec![
                ("plain".into(), Json::Str("line one\nline two".into())),
                ("crlf".into(), Json::Str("a\r\nb".into())),
                ("key\nwith newline".into(), Json::Num(1.0)),
            ]),
            Json::Str(all_controls),
            Json::Array(vec![
                Json::Str("\n".into()),
                Json::Str("\u{85}\u{2028}\u{2029}".into()),
                Json::Null,
            ]),
            Json::Object(vec![(
                "nested".into(),
                Json::Array(vec![Json::Object(vec![(
                    "\t".into(),
                    Json::Str("\0".into()),
                )])]),
            )]),
            Json::Num(-0.0),
            Json::Bool(false),
        ]
    }

    #[test]
    fn jsonl_lines_never_contain_raw_newlines() {
        let text = to_jsonl(&adversarial_docs());
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines emitted");
            assert!(!line.contains('\r'), "no raw CR inside a line: {line:?}");
        }
        // One physical line per document, despite the embedded newlines.
        assert_eq!(text.lines().count(), adversarial_docs().len());
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_round_trip_reaches_canonical_fixed_point() {
        let docs = adversarial_docs();
        let first = to_jsonl(&docs);
        let parsed = parse_jsonl(&first).expect("written JSONL parses");
        assert_eq!(parsed.len(), docs.len());
        // write -> parse -> write is the identity on the text: canonical
        // serialisation is a fixed point.
        let second = to_jsonl(&parsed);
        assert_eq!(first, second);
        // And the values survive semantically (keys get sorted by the
        // canonical form, so compare through a second parse).
        for (a, b) in parsed.iter().zip(&parse_jsonl(&second).unwrap()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn jsonl_skips_blank_lines_and_reports_bad_ones() {
        let text = "\n{\"a\":1}\n   \n\n\"two\"\n\t\n";
        let docs = parse_jsonl(text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(docs[1].as_str(), Some("two"));
        assert_eq!(parse_jsonl("").unwrap(), Vec::new());

        let err = parse_jsonl("{\"ok\":true}\n{oops\n").unwrap_err();
        assert!(err.message.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_containers() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul", "tru", "01",
            "1.", "1e", "+1", "\"\\x\"", "\"unterminated", "{\"a\":1} extra",
            "[\"\u{1}\"]", "\"\\ud800\"", "\"\\udc00 alone\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1f600}".into())
        );
    }

    #[test]
    fn every_control_char_round_trips() {
        // The satellite requirement: *all* chars < 0x20 escape and
        // re-parse to the original string, not just \n/\t/\"/\\.
        let original: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let mut encoded = String::new();
        push_json_str(&mut encoded, &original);
        assert!(
            !encoded.chars().any(|c| (c as u32) < 0x20),
            "no raw control characters may survive escaping: {encoded:?}"
        );
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original));
    }

    #[test]
    fn writer_output_round_trips_through_the_parser() {
        for v in [0.0, -0.0, 1.0, 2.5e-10, 6.02e23, -17.25, 9.0e15] {
            let mut out = String::new();
            push_json_f64(&mut out, v);
            assert_eq!(parse(&out).unwrap(), Json::Num(v), "report form of {v}");
            let mut out = String::new();
            push_json_num(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_f64(), Some(v), "canonical form of {v}");
        }
        for s in ["", "plain", "a\"b\\c\nd\u{1}e\u{8}f\u{c}g", "ünïcode \u{1f600}"] {
            let mut out = String::new();
            push_json_str(&mut out, s);
            assert_eq!(parse(&out).unwrap(), Json::Str(s.into()), "string {s:?}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut out = String::new();
            push_json_f64(&mut out, v);
            assert_eq!(out, "null");
            let mut out = String::new();
            push_json_num(&mut out, v);
            assert_eq!(out, "null");
            // ... and therefore round-trip to Json::Null, never NaN.
            assert!(parse(&out).unwrap().is_null());
        }
    }

    #[test]
    fn canonicalisation_sorts_keys_and_normalises_numbers() {
        let a = parse(r#"{"z": 1e0, "a": {"y": 2.0, "x": 3}}"#).unwrap();
        let b = parse(r#"{"a":{"x":3.0,"y":2},"z":1}"#).unwrap();
        assert_eq!(a.to_canonical_string(), b.to_canonical_string());
        assert_eq!(a.to_canonical_string(), r#"{"a":{"x":3,"y":2},"z":1}"#);
    }

    #[test]
    fn display_preserves_document_order() {
        let doc = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(doc.to_string(), r#"{"z":1e0,"a":2e0}"#);
    }

    #[test]
    fn accessors_are_type_safe() {
        let doc = parse(r#"{"n": 7, "s": "x", "b": true, "f": 1.5, "neg": -1}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("f").and_then(Json::as_u64), None);
        assert_eq!(doc.get("neg").and_then(Json::as_u64), None);
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
