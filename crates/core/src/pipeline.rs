//! The end-to-end study pipeline: fault-injection profiling → paired
//! ChipIR/ROTAX campaigns → per-device reports.

use crate::registry::full_roster;
use crate::report::{DeviceReport, StudyReport};
use std::collections::HashMap;
use tn_beamline::{Campaign, Facility};
use tn_fault_injection::{InjectionCampaign, InjectionStats};
use tn_physics::units::Seconds;
use tn_workloads::Workload;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Fault injections per workload when profiling masking behaviour.
    pub injection_runs: u64,
    /// Beam-on hours per campaign (longer → tighter Poisson intervals).
    pub beam_hours: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            injection_runs: 300,
            beam_hours: 8.0,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for smoke tests and doc examples.
    pub fn quick() -> Self {
        Self {
            injection_runs: 60,
            beam_hours: 2.0,
        }
    }

    /// A high-statistics configuration for the benches.
    pub fn thorough() -> Self {
        Self {
            injection_runs: 800,
            beam_hours: 40.0,
        }
    }
}

/// The study driver.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    seed: u64,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config, seed: 0 }
    }

    /// Sets the seed controlling workload inputs, fault draws and
    /// campaign noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Profiles one workload's fault-masking behaviour.
    fn profile(&self, workload: &dyn Workload) -> InjectionStats {
        InjectionCampaign::new(workload)
            .runs(self.config.injection_runs)
            .seed(self.seed ^ 0xf417)
            .execute()
    }

    /// Runs the full study: every device, its codes, both beams.
    ///
    /// Workload profiling is done once per distinct code (the profile
    /// depends only on the program, not the device); the per-device
    /// campaign pairs then run on scoped worker threads. Results are
    /// deterministic for a given seed regardless of thread count: every
    /// campaign derives its own RNG stream from `(device, workload)`.
    pub fn run(&self) -> StudyReport {
        // Stage spans feed the `tn_span_seconds` histograms behind the
        // CLI `profile` report and `/metrics`; they are telemetry-only
        // and never touch the RNG streams (tests/determinism.rs pins
        // byte-identical output at TRACE vs OFF).
        let _span = tn_obs::span("pipeline");
        tn_obs::info(
            "pipeline_start",
            &[
                ("seed", self.seed.into()),
                ("injection_runs", self.config.injection_runs.into()),
                ("beam_hours", self.config.beam_hours.into()),
            ],
        );
        let roster = full_roster(self.seed);
        // Workload profiles depend only on the workload, not the device:
        // cache them by name so MxM is profiled once, not five times.
        let profile_span = tn_obs::span("pipeline.profile");
        let mut profiles: HashMap<&'static str, InjectionStats> = HashMap::new();
        for entry in &roster {
            for workload in &entry.workloads {
                profiles
                    .entry(workload.name())
                    .or_insert_with(|| self.profile(workload.as_ref()));
            }
        }
        drop(profile_span);
        let profiles = &profiles;
        let campaigns_span = tn_obs::span("pipeline.campaigns");
        let mut reports: Vec<Option<DeviceReport>> = (0..roster.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (d_idx, (entry, slot)) in roster.iter().zip(reports.iter_mut()).enumerate() {
                scope.spawn(move || {
                    let mut chipir = Vec::new();
                    let mut rotax = Vec::new();
                    for (w_idx, workload) in entry.workloads.iter().enumerate() {
                        let profile = profiles[workload.name()];
                        let campaign_seed =
                            self.seed ^ ((d_idx as u64) << 32) ^ ((w_idx as u64) << 16);
                        chipir.push(
                            Campaign::new(
                                Facility::chipir(),
                                &entry.device,
                                workload.name(),
                                profile,
                            )
                            .beam_time(Seconds::from_hours(self.config.beam_hours))
                            .seed(campaign_seed)
                            .run(),
                        );
                        rotax.push(
                            Campaign::new(
                                Facility::rotax(),
                                &entry.device,
                                workload.name(),
                                profile,
                            )
                            .beam_time(Seconds::from_hours(self.config.beam_hours))
                            .seed(campaign_seed ^ 0xbeef)
                            .run(),
                        );
                    }
                    *slot = Some(DeviceReport {
                        name: entry.device.name().to_string(),
                        chipir,
                        rotax,
                    });
                });
            }
        });
        drop(campaigns_span);
        let report_span = tn_obs::span("pipeline.report");
        let reports = reports
            .into_iter()
            .map(|r| r.expect("every device slot filled"))
            .collect();
        let report = StudyReport::new(reports, self.seed);
        drop(report_span);
        tn_obs::info(
            "pipeline_done",
            &[("devices", report.devices().len().into())],
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_produces_all_devices() {
        let report = Pipeline::new(PipelineConfig::quick()).seed(1).run();
        assert_eq!(report.devices().len(), 8);
        for d in report.devices() {
            assert!(!d.chipir.is_empty());
            assert_eq!(d.chipir.len(), d.rotax.len());
        }
    }

    #[test]
    fn pipeline_is_reproducible() {
        let a = Pipeline::new(PipelineConfig::quick()).seed(2).run();
        let b = Pipeline::new(PipelineConfig::quick()).seed(2).run();
        assert_eq!(a, b);
    }

    #[test]
    fn xeon_phi_ratio_far_exceeds_k20_ratio() {
        // The core Figure-5 shape must survive the whole pipeline,
        // including fault-injection modulation and Poisson noise.
        let report = Pipeline::new(PipelineConfig::default()).seed(3).run();
        let phi = report.device("Intel Xeon Phi").unwrap().sdc_ratio();
        let k20 = report.device("NVIDIA K20").unwrap().sdc_ratio();
        assert!(
            phi > 2.5 * k20,
            "Xeon Phi ratio {phi:.2} should dwarf K20 ratio {k20:.2}"
        );
    }

    #[test]
    fn fpga_never_shows_a_due() {
        let report = Pipeline::new(PipelineConfig::default()).seed(4).run();
        let fpga = report.device("Xilinx Zynq-7000").unwrap();
        let due_counts: u64 = fpga
            .chipir
            .iter()
            .chain(&fpga.rotax)
            .map(|r| r.due.count)
            .sum();
        assert_eq!(due_counts, 0, "the paper never observed an FPGA DUE");
    }
}
