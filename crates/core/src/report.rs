//! Study results: per-device campaign collections, ratio extraction and
//! FIT folding — the data behind Figures 1, 5 and the FIT analysis.
//!
//! Machine-readable export is a hand-rolled JSON writer ([`StudyReport::to_json`])
//! rather than a serde derive: the hermetic-build policy keeps external
//! crates out of the build graph, and the report shape is small and stable
//! enough that a page of formatting code covers it. The escaping and
//! number-formatting primitives live in [`crate::json`], the JSON layer
//! shared with the `tn-server` HTTP API.

use crate::json::{push_json_f64, push_json_str};
use tn_beamline::CampaignResult;
use tn_environment::Environment;
use tn_fit::DeviceFit;
use tn_physics::units::CrossSection;

/// All campaign results for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name.
    pub name: String,
    /// ChipIR (high-energy) campaigns, one per workload.
    pub chipir: Vec<CampaignResult>,
    /// ROTAX (thermal) campaigns, one per workload.
    pub rotax: Vec<CampaignResult>,
}

impl DeviceReport {
    fn mean_sigma(results: &[CampaignResult], sdc: bool) -> f64 {
        if results.is_empty() {
            return 0.0;
        }
        results
            .iter()
            .map(|r| if sdc { r.sdc.sigma } else { r.due.sigma })
            .sum::<f64>()
            / results.len() as f64
    }

    /// Device-average high-energy SDC cross section.
    pub fn sdc_sigma_he(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.chipir, true))
    }

    /// Device-average thermal SDC cross section.
    pub fn sdc_sigma_th(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.rotax, true))
    }

    /// Device-average high-energy DUE cross section.
    pub fn due_sigma_he(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.chipir, false))
    }

    /// Device-average thermal DUE cross section.
    pub fn due_sigma_th(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.rotax, false))
    }

    /// Figure-5 style average SDC cross-section ratio (HE / thermal);
    /// infinite when no thermal SDC was observed.
    pub fn sdc_ratio(&self) -> f64 {
        ratio(self.sdc_sigma_he().value(), self.sdc_sigma_th().value())
    }

    /// Figure-5 style average DUE ratio.
    pub fn due_ratio(&self) -> f64 {
        ratio(self.due_sigma_he().value(), self.due_sigma_th().value())
    }

    /// Folds the device's measured SDC cross sections with an environment.
    pub fn sdc_fit(&self, env: &Environment) -> DeviceFit {
        DeviceFit::from_cross_sections(self.sdc_sigma_he(), self.sdc_sigma_th(), env)
    }

    /// Folds the device's measured DUE cross sections with an environment.
    pub fn due_fit(&self, env: &Environment) -> DeviceFit {
        DeviceFit::from_cross_sections(self.due_sigma_he(), self.due_sigma_th(), env)
    }

    /// Serialises this device's campaigns as a single-line JSON object:
    /// `{"name":...,"chipir":[...],"rotax":[...]}` — the per-device slice
    /// of [`StudyReport::to_json`], also served by `tn-server`'s
    /// `/v1/cross-sections` endpoint.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.push_json(&mut out);
        out
    }

    fn push_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        push_json_str(out, &self.name);
        out.push_str(",\"chipir\":");
        push_json_campaigns(out, &self.chipir);
        out.push_str(",\"rotax\":");
        push_json_campaigns(out, &self.rotax);
        out.push('}');
    }

    /// Per-workload SDC ratios `(workload, ratio)` — the Figure-1 series.
    pub fn per_workload_sdc_ratios(&self) -> Vec<(String, f64)> {
        self.chipir
            .iter()
            .filter_map(|he| {
                let th = self.rotax.iter().find(|r| r.workload == he.workload)?;
                Some((he.workload.clone(), ratio(he.sdc.sigma, th.sdc.sigma)))
            })
            .collect()
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

fn push_json_cross_section(out: &mut String, m: &tn_beamline::MeasuredCrossSection) {
    out.push_str("{\"count\":");
    out.push_str(&m.count.to_string());
    out.push_str(",\"fluence\":");
    push_json_f64(out, m.fluence);
    out.push_str(",\"sigma\":");
    push_json_f64(out, m.sigma);
    out.push_str(",\"ci\":[");
    push_json_f64(out, m.ci.0);
    out.push(',');
    push_json_f64(out, m.ci.1);
    out.push_str("]}");
}

fn push_json_campaign(out: &mut String, r: &CampaignResult) {
    out.push_str("{\"device\":");
    push_json_str(out, &r.device);
    out.push_str(",\"workload\":");
    push_json_str(out, &r.workload);
    out.push_str(",\"facility\":");
    push_json_str(out, &r.facility);
    out.push_str(",\"beam_seconds\":");
    push_json_f64(out, r.beam_seconds);
    out.push_str(",\"sdc\":");
    push_json_cross_section(out, &r.sdc);
    out.push_str(",\"due\":");
    push_json_cross_section(out, &r.due);
    out.push('}');
}

fn push_json_campaigns(out: &mut String, rs: &[CampaignResult]) {
    out.push('[');
    for (i, r) in rs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_campaign(out, r);
    }
    out.push(']');
}

/// The whole study: one report per device.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    devices: Vec<DeviceReport>,
    /// RNG seed the study ran with.
    pub seed: u64,
}

impl StudyReport {
    /// Assembles a report.
    pub fn new(devices: Vec<DeviceReport>, seed: u64) -> Self {
        Self { devices, seed }
    }

    /// Per-device reports in catalog order.
    pub fn devices(&self) -> &[DeviceReport] {
        &self.devices
    }

    /// Looks a device up by name.
    pub fn device(&self, name: &str) -> Option<&DeviceReport> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// Serializes the whole study as a single-line JSON document.
    ///
    /// The layout mirrors the struct tree:
    /// `{"seed":N,"devices":[{"name":...,"chipir":[...],"rotax":[...]}]}`,
    /// with every campaign carrying its counts, fluence, sigma and 95 %
    /// confidence bounds. Non-finite bounds encode as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            d.push_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Renders the Figure-5 table (average HE/thermal cross-section
    /// ratios) as fixed-width text.
    pub fn render_ratio_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<22} {:>10} {:>10}\n", "device", "SDC", "DUE"));
        for device in &self.devices {
            let fmt = |r: f64| {
                if r.is_finite() {
                    format!("{r:.2}")
                } else {
                    "n/a".to_string()
                }
            };
            out.push_str(&format!(
                "{:<22} {:>10} {:>10}\n",
                device.name,
                fmt(device.sdc_ratio()),
                fmt(device.due_ratio())
            ));
        }
        out
    }

    /// Renders the thermal-share FIT table for a set of labelled
    /// environments.
    pub fn render_fit_table(&self, environments: &[(&str, Environment)]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<22}", "device"));
        for (label, _) in environments {
            out.push_str(&format!(" {:>14}", format!("{label} SDC")));
            out.push_str(&format!(" {:>14}", format!("{label} DUE")));
        }
        out.push('\n');
        for device in &self.devices {
            out.push_str(&format!("{:<22}", device.name));
            for (_, env) in environments {
                out.push_str(&format!(
                    " {:>13.1}%",
                    100.0 * device.sdc_fit(env).thermal_share()
                ));
                out.push_str(&format!(
                    " {:>13.1}%",
                    100.0 * device.due_fit(env).thermal_share()
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_beamline::MeasuredCrossSection;

    fn result(workload: &str, facility: &str, sdc: f64, due: f64) -> CampaignResult {
        CampaignResult {
            device: "dev".into(),
            workload: workload.into(),
            facility: facility.into(),
            beam_seconds: 1.0,
            sdc: MeasuredCrossSection::from_counts((sdc * 1e10) as u64, 1e10),
            due: MeasuredCrossSection::from_counts((due * 1e10) as u64, 1e10),
        }
    }

    fn report() -> DeviceReport {
        DeviceReport {
            name: "dev".into(),
            chipir: vec![result("MxM", "ChipIR", 4.0, 2.0), result("LUD", "ChipIR", 6.0, 4.0)],
            rotax: vec![result("MxM", "ROTAX", 2.0, 1.0), result("LUD", "ROTAX", 3.0, 2.0)],
        }
    }

    #[test]
    fn mean_cross_sections_average_workloads() {
        let r = report();
        assert!((r.sdc_sigma_he().value() - 5.0).abs() < 1e-9);
        assert!((r.sdc_sigma_th().value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_he_over_thermal() {
        let r = report();
        assert!((r.sdc_ratio() - 2.0).abs() < 1e-9);
        assert!((r.due_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_workload_ratios_pair_by_name() {
        let r = report();
        let rows = r.per_workload_sdc_ratios();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "MxM");
        assert!((rows[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_thermal_gives_infinite_ratio() {
        let mut r = report();
        r.rotax = vec![result("MxM", "ROTAX", 0.0, 0.0)];
        assert!(r.sdc_ratio().is_infinite());
    }

    #[test]
    fn rendered_tables_contain_every_device_row() {
        let study = StudyReport::new(vec![report()], 42);
        let ratio_table = study.render_ratio_table();
        assert!(ratio_table.contains("dev"));
        assert!(ratio_table.contains("2.00"));
        let fit_table = study.render_fit_table(&[
            ("NYC", Environment::nyc_reference()),
            ("Leadville", Environment::leadville_machine_room()),
        ]);
        assert!(fit_table.contains("NYC SDC"));
        assert!(fit_table.contains("Leadville DUE"));
        assert_eq!(fit_table.lines().count(), 2, "header + one device");
    }

    #[test]
    fn json_export_has_the_full_tree() {
        let study = StudyReport::new(vec![report()], 42);
        let json = study.to_json();
        assert!(json.starts_with("{\"seed\":42,\"devices\":["));
        assert!(json.ends_with("]}"));
        for key in ["\"name\":", "\"chipir\":", "\"rotax\":", "\"workload\":\"MxM\"",
                    "\"facility\":\"ChipIR\"", "\"count\":", "\"sigma\":", "\"ci\":["] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced structure: every opened brace/bracket closes.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_and_non_finite_values() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut out = String::new();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_f64(&mut out, 2.5e-10);
        assert_eq!(out, "2.5e-10");
    }

    #[test]
    fn json_export_round_trips_through_the_parser() {
        let mut dev = report();
        dev.name = "weird \"name\"\twith\ncontrols \u{1}\u{8}\u{c}".into();
        // A campaign with no observed events has an unbounded (infinite)
        // upper confidence limit → must encode as null, not `inf`.
        dev.rotax = vec![result("MxM", "ROTAX", 0.0, 0.0)];
        let study = StudyReport::new(vec![dev.clone()], 42);
        let doc = crate::json::parse(&study.to_json()).expect("report JSON must parse");
        assert_eq!(doc.get("seed").and_then(crate::json::Json::as_u64), Some(42));
        let devices = doc.get("devices").and_then(crate::json::Json::as_array).unwrap();
        assert_eq!(
            devices[0].get("name").and_then(crate::json::Json::as_str),
            Some(dev.name.as_str())
        );
        // The per-device export is the same slice the study embeds.
        assert!(study.to_json().contains(&dev.to_json()));
    }

    #[test]
    fn json_export_is_deterministic() {
        let study = StudyReport::new(vec![report()], 7);
        assert_eq!(study.to_json(), study.to_json());
    }

    #[test]
    fn study_lookup_by_name() {
        let study = StudyReport::new(vec![report()], 42);
        assert!(study.device("dev").is_some());
        assert!(study.device("nope").is_none());
        assert_eq!(study.devices().len(), 1);
        assert_eq!(study.seed, 42);
    }
}
