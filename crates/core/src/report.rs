//! Study results: per-device campaign collections, ratio extraction and
//! FIT folding — the data behind Figures 1, 5 and the FIT analysis.

use serde::{Deserialize, Serialize};
use tn_beamline::CampaignResult;
use tn_environment::Environment;
use tn_fit::DeviceFit;
use tn_physics::units::CrossSection;

/// All campaign results for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device name.
    pub name: String,
    /// ChipIR (high-energy) campaigns, one per workload.
    pub chipir: Vec<CampaignResult>,
    /// ROTAX (thermal) campaigns, one per workload.
    pub rotax: Vec<CampaignResult>,
}

impl DeviceReport {
    fn mean_sigma(results: &[CampaignResult], sdc: bool) -> f64 {
        if results.is_empty() {
            return 0.0;
        }
        results
            .iter()
            .map(|r| if sdc { r.sdc.sigma } else { r.due.sigma })
            .sum::<f64>()
            / results.len() as f64
    }

    /// Device-average high-energy SDC cross section.
    pub fn sdc_sigma_he(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.chipir, true))
    }

    /// Device-average thermal SDC cross section.
    pub fn sdc_sigma_th(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.rotax, true))
    }

    /// Device-average high-energy DUE cross section.
    pub fn due_sigma_he(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.chipir, false))
    }

    /// Device-average thermal DUE cross section.
    pub fn due_sigma_th(&self) -> CrossSection {
        CrossSection(Self::mean_sigma(&self.rotax, false))
    }

    /// Figure-5 style average SDC cross-section ratio (HE / thermal);
    /// infinite when no thermal SDC was observed.
    pub fn sdc_ratio(&self) -> f64 {
        ratio(self.sdc_sigma_he().value(), self.sdc_sigma_th().value())
    }

    /// Figure-5 style average DUE ratio.
    pub fn due_ratio(&self) -> f64 {
        ratio(self.due_sigma_he().value(), self.due_sigma_th().value())
    }

    /// Folds the device's measured SDC cross sections with an environment.
    pub fn sdc_fit(&self, env: &Environment) -> DeviceFit {
        DeviceFit::from_cross_sections(self.sdc_sigma_he(), self.sdc_sigma_th(), env)
    }

    /// Folds the device's measured DUE cross sections with an environment.
    pub fn due_fit(&self, env: &Environment) -> DeviceFit {
        DeviceFit::from_cross_sections(self.due_sigma_he(), self.due_sigma_th(), env)
    }

    /// Per-workload SDC ratios `(workload, ratio)` — the Figure-1 series.
    pub fn per_workload_sdc_ratios(&self) -> Vec<(String, f64)> {
        self.chipir
            .iter()
            .filter_map(|he| {
                let th = self.rotax.iter().find(|r| r.workload == he.workload)?;
                Some((he.workload.clone(), ratio(he.sdc.sigma, th.sdc.sigma)))
            })
            .collect()
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// The whole study: one report per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    devices: Vec<DeviceReport>,
    /// RNG seed the study ran with.
    pub seed: u64,
}

impl StudyReport {
    /// Assembles a report.
    pub fn new(devices: Vec<DeviceReport>, seed: u64) -> Self {
        Self { devices, seed }
    }

    /// Per-device reports in catalog order.
    pub fn devices(&self) -> &[DeviceReport] {
        &self.devices
    }

    /// Looks a device up by name.
    pub fn device(&self, name: &str) -> Option<&DeviceReport> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// Renders the Figure-5 table (average HE/thermal cross-section
    /// ratios) as fixed-width text.
    pub fn render_ratio_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<22} {:>10} {:>10}\n", "device", "SDC", "DUE"));
        for device in &self.devices {
            let fmt = |r: f64| {
                if r.is_finite() {
                    format!("{r:.2}")
                } else {
                    "n/a".to_string()
                }
            };
            out.push_str(&format!(
                "{:<22} {:>10} {:>10}\n",
                device.name,
                fmt(device.sdc_ratio()),
                fmt(device.due_ratio())
            ));
        }
        out
    }

    /// Renders the thermal-share FIT table for a set of labelled
    /// environments.
    pub fn render_fit_table(&self, environments: &[(&str, Environment)]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<22}", "device"));
        for (label, _) in environments {
            out.push_str(&format!(" {:>14}", format!("{label} SDC")));
            out.push_str(&format!(" {:>14}", format!("{label} DUE")));
        }
        out.push('\n');
        for device in &self.devices {
            out.push_str(&format!("{:<22}", device.name));
            for (_, env) in environments {
                out.push_str(&format!(
                    " {:>13.1}%",
                    100.0 * device.sdc_fit(env).thermal_share()
                ));
                out.push_str(&format!(
                    " {:>13.1}%",
                    100.0 * device.due_fit(env).thermal_share()
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_beamline::MeasuredCrossSection;

    fn result(workload: &str, facility: &str, sdc: f64, due: f64) -> CampaignResult {
        CampaignResult {
            device: "dev".into(),
            workload: workload.into(),
            facility: facility.into(),
            beam_seconds: 1.0,
            sdc: MeasuredCrossSection::from_counts((sdc * 1e10) as u64, 1e10),
            due: MeasuredCrossSection::from_counts((due * 1e10) as u64, 1e10),
        }
    }

    fn report() -> DeviceReport {
        DeviceReport {
            name: "dev".into(),
            chipir: vec![result("MxM", "ChipIR", 4.0, 2.0), result("LUD", "ChipIR", 6.0, 4.0)],
            rotax: vec![result("MxM", "ROTAX", 2.0, 1.0), result("LUD", "ROTAX", 3.0, 2.0)],
        }
    }

    #[test]
    fn mean_cross_sections_average_workloads() {
        let r = report();
        assert!((r.sdc_sigma_he().value() - 5.0).abs() < 1e-9);
        assert!((r.sdc_sigma_th().value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_he_over_thermal() {
        let r = report();
        assert!((r.sdc_ratio() - 2.0).abs() < 1e-9);
        assert!((r.due_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_workload_ratios_pair_by_name() {
        let r = report();
        let rows = r.per_workload_sdc_ratios();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "MxM");
        assert!((rows[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_thermal_gives_infinite_ratio() {
        let mut r = report();
        r.rotax = vec![result("MxM", "ROTAX", 0.0, 0.0)];
        assert!(r.sdc_ratio().is_infinite());
    }

    #[test]
    fn rendered_tables_contain_every_device_row() {
        let study = StudyReport::new(vec![report()], 42);
        let ratio_table = study.render_ratio_table();
        assert!(ratio_table.contains("dev"));
        assert!(ratio_table.contains("2.00"));
        let fit_table = study.render_fit_table(&[
            ("NYC", Environment::nyc_reference()),
            ("Leadville", Environment::leadville_machine_room()),
        ]);
        assert!(fit_table.contains("NYC SDC"));
        assert!(fit_table.contains("Leadville DUE"));
        assert_eq!(fit_table.lines().count(), 2, "header + one device");
    }

    #[test]
    fn study_lookup_by_name() {
        let study = StudyReport::new(vec![report()], 42);
        assert!(study.device("dev").is_some());
        assert!(study.device("nope").is_none());
        assert_eq!(study.devices().len(), 1);
        assert_eq!(study.seed, 42);
    }
}
