//! The scenario runner: advances a virtual clock over a scripted
//! campaign, mutates the environment at each event, streams fused array
//! counts through the tn-obs change-point monitor, and reports per-event
//! detection outcomes plus per-channel health verdicts.
//!
//! Everything is deterministic: the runner holds its *own*
//! [`VirtualClock`] (it never reads the process clock), all randomness
//! flows from the seed through forked streams, and the Monte-Carlo
//! moderation boost uses the same transport kernel whose tallies are
//! independent of the worker-thread count. Reports therefore serialise
//! byte-identically across runs and `--transport-threads` settings.

use crate::array::{ChannelHealth, ChannelVerdict, DetectorArray};
use crate::format::{EventKind, FaultKind, Scenario};
use tn_core::json::Json;
use tn_detector::{tinii_monitor_config, WaterBoxExperiment};
use tn_obs::timeline::{Alert, AlertKind, Monitor, MonitorConfig};
use tn_obs::{Clock, VirtualClock};

/// Nanoseconds per hourly counting bin.
pub const HOUR_NANOS: u64 = 3_600_000_000_000;

/// Thermal-flux multiplier of the scripted calibration beam.
pub const BEAM_THERMAL_FACTOR: f64 = 4.0;

/// How far an alert's estimated onset may precede the scripted change
/// point and still be credited to it (CUSUM onsets jitter backwards by a
/// few samples on noisy series).
pub const ONSET_SLACK: u64 = 4;

/// Largest accepted gap between a scripted change and its detection.
pub const MAX_ONSET_DELAY: u64 = 24;

/// Relative environment changes smaller than this are not required to
/// be detected (they sit inside the monitor's designed dead band).
pub const MAGNITUDE_FLOOR: f64 = 0.02;

/// Monitor tuning for fused hourly array counts — the Tin-II tuning
/// with exact Garwood intervals.
pub fn scenario_monitor_config() -> MonitorConfig {
    tinii_monitor_config()
}

/// Outcome of one scripted event after the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct EventOutcome {
    /// Hour the event was scripted at.
    pub at_hour: u32,
    /// Event kind label.
    pub kind: &'static str,
    /// Event value label, when parameterised.
    pub value: Option<&'static str>,
    /// Whether the event was large enough that detection is required.
    pub expected: bool,
    /// Analytic relative change in the fused rate this event causes.
    pub expected_magnitude: f64,
    /// Whether an alert was credited to this event.
    pub detected: bool,
    /// Samples between the event and its detection.
    pub detection_delay: Option<u64>,
    /// Post-hoc refined magnitude: mean fused rate after the event
    /// (up to the next event) against the mean before it, minus one.
    pub refined_magnitude: f64,
    /// Kind label of the credited alert.
    pub alert_kind: Option<&'static str>,
}

/// The byte-deterministic outcome of a scenario campaign.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// RNG seed of the campaign.
    pub seed: u64,
    /// Hourly samples taken.
    pub samples: u32,
    /// MC-derived water-pan thermal boost (`None` when the scenario
    /// never uses moderation).
    pub moderation_boost: Option<f64>,
    /// The monitor's first frozen reference rate (counts/s).
    pub baseline_rate: f64,
    /// Mean fused count rate over the whole campaign (counts/s).
    pub fused_mean_rate: f64,
    /// The fused hourly count series.
    pub fused: Vec<u64>,
    /// Every alert the monitor raised, in detection order.
    pub alerts: Vec<Alert>,
    /// Per-event outcomes, in timeline order.
    pub events: Vec<EventOutcome>,
    /// Alerts not credited to any scripted event (false positives).
    pub unmatched_alerts: u32,
    /// Final per-channel health verdicts.
    pub channels: Vec<ChannelHealth>,
    /// Whether the campaign met its conformance contract.
    pub conformant: bool,
}

impl ScenarioReport {
    /// Renders the report as canonical JSON (sorted keys, canonical
    /// numbers) — byte-identical across runs and thread counts. The
    /// fused series itself is omitted to keep reports compact; its mean
    /// rate and every derived statistic are included.
    pub fn to_json(&self) -> String {
        let alerts = self
            .alerts
            .iter()
            .map(|a| {
                Json::Object(vec![
                    ("kind".to_string(), Json::Str(a.kind.label().to_string())),
                    ("onset_index".to_string(), Json::Num(a.onset_index as f64)),
                    (
                        "detected_index".to_string(),
                        Json::Num(a.detected_index as f64),
                    ),
                    ("ts_nanos".to_string(), Json::Num(a.ts_nanos as f64)),
                    ("baseline_rate".to_string(), Json::Num(a.baseline_rate)),
                    ("observed_rate".to_string(), Json::Num(a.observed_rate)),
                    ("magnitude".to_string(), Json::Num(a.magnitude)),
                ])
            })
            .collect();
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("at_hour".to_string(), Json::Num(e.at_hour as f64)),
                    ("kind".to_string(), Json::Str(e.kind.to_string())),
                    (
                        "value".to_string(),
                        e.value.map_or(Json::Null, |v| Json::Str(v.to_string())),
                    ),
                    ("expected".to_string(), Json::Bool(e.expected)),
                    (
                        "expected_magnitude".to_string(),
                        Json::Num(e.expected_magnitude),
                    ),
                    ("detected".to_string(), Json::Bool(e.detected)),
                    (
                        "detection_delay".to_string(),
                        e.detection_delay
                            .map_or(Json::Null, |d| Json::Num(d as f64)),
                    ),
                    (
                        "refined_magnitude".to_string(),
                        Json::Num(e.refined_magnitude),
                    ),
                    (
                        "alert_kind".to_string(),
                        e.alert_kind.map_or(Json::Null, |k| Json::Str(k.to_string())),
                    ),
                ])
            })
            .collect();
        let channels = self
            .channels
            .iter()
            .map(|c| {
                Json::Object(vec![
                    ("channel".to_string(), Json::Num(c.channel as f64)),
                    (
                        "verdict".to_string(),
                        Json::Str(c.verdict.label().to_string()),
                    ),
                    (
                        "flagged_hour".to_string(),
                        c.flagged_hour.map_or(Json::Null, |h| Json::Num(h as f64)),
                    ),
                ])
            })
            .collect();
        Json::Object(vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("samples".to_string(), Json::Num(self.samples as f64)),
            (
                "moderation_boost".to_string(),
                self.moderation_boost.map_or(Json::Null, Json::Num),
            ),
            ("baseline_rate".to_string(), Json::Num(self.baseline_rate)),
            (
                "fused_mean_rate".to_string(),
                Json::Num(self.fused_mean_rate),
            ),
            ("alerts".to_string(), Json::Array(alerts)),
            ("events".to_string(), Json::Array(events)),
            (
                "unmatched_alerts".to_string(),
                Json::Num(self.unmatched_alerts as f64),
            ),
            ("channels".to_string(), Json::Array(channels)),
            ("conformant".to_string(), Json::Bool(self.conformant)),
        ])
        .to_canonical_string()
    }
}

/// Drives one scenario campaign to completion.
#[derive(Debug)]
pub struct ScenarioRunner {
    scenario: Scenario,
    seed: u64,
    clock: VirtualClock,
}

impl ScenarioRunner {
    /// Prepares a runner for `scenario` at `seed`. The runner owns a
    /// private [`VirtualClock`] starting at zero — it never reads (or
    /// installs) the process-wide clock.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        Self {
            scenario,
            seed,
            clock: VirtualClock::starting_at(0),
        }
    }

    /// Runs the campaign and produces the report.
    pub fn run(self) -> ScenarioReport {
        let scenario = self.scenario;
        let seed = self.seed;

        // The water pan's thermal boost is derived by Monte-Carlo
        // moderation once per campaign (same seed derivation as the
        // Figure-6 experiment), only when the scenario needs it.
        let moderation_boost = scenario.uses_moderation().then(|| {
            WaterBoxExperiment::paper_configuration(scenario.initial_environment())
                .derive_boost(seed ^ 0x5ca1e)
        });

        let mut array = DetectorArray::new(seed, scenario.channels, &scenario.faults);
        let mut monitor = Monitor::new(scenario_monitor_config());

        // Mutable campaign state, advanced by the scripted events.
        let mut location = scenario.location;
        let mut weather = scenario.weather;
        let mut surroundings = scenario.surroundings;
        let mut moderation = scenario.moderation;
        let mut beam = false;
        let mut env = scenario.initial_environment();

        let mut fused = Vec::with_capacity(scenario.duration_hours as usize);
        let mut levels = Vec::with_capacity(scenario.duration_hours as usize);
        let mut alerts = Vec::new();
        let mut baseline_rate = 0.0;
        let mut baseline_captured = false;
        let mut next_event = 0usize;

        for hour in 0..scenario.duration_hours {
            while let Some(event) = scenario.events.get(next_event) {
                if event.at_hour != hour {
                    break;
                }
                match event.kind {
                    EventKind::Weather(w) => weather = w,
                    EventKind::Surroundings(s) => surroundings = s,
                    EventKind::Move(l) => location = l,
                    EventKind::ModerationOn => moderation = true,
                    EventKind::ModerationOff => moderation = false,
                    EventKind::BeamOn => beam = true,
                    EventKind::BeamOff => beam = false,
                }
                env = tn_environment::Environment::new(
                    location.location(),
                    weather,
                    surroundings.surroundings(),
                );
                next_event += 1;
            }
            let scale = thermal_scale(moderation, beam, moderation_boost);
            let sample = array.sample_hour(hour, &env, scale);
            levels.push(env.thermal_flux().value() * scale);
            alerts.extend(monitor.observe(self.clock.now_nanos(), sample.fused, 3600.0));
            fused.push(sample.fused);
            self.clock.advance(HOUR_NANOS);
            if !baseline_captured && monitor.armed() {
                baseline_rate = monitor.reference_rate();
                baseline_captured = true;
            }
        }

        let events = credit_alerts(&scenario, &levels, &fused, &alerts);
        let matched = events.iter().filter(|e| e.detected).count();
        let unmatched_alerts = (alerts.len() - matched) as u32;
        let channels = array.health();
        let conformant = is_conformant(&scenario, &events, unmatched_alerts, &channels);
        let samples = scenario.duration_hours;
        let fused_mean_rate =
            fused.iter().sum::<u64>() as f64 / (samples as f64 * 3600.0);

        ScenarioReport {
            scenario,
            seed,
            samples,
            moderation_boost,
            baseline_rate,
            fused_mean_rate,
            fused,
            alerts,
            events,
            unmatched_alerts,
            channels,
            conformant,
        }
    }
}

/// Runs `scenario` at `seed` — the one-call form of [`ScenarioRunner`].
pub fn run_scenario(scenario: &Scenario, seed: u64) -> ScenarioReport {
    ScenarioRunner::new(scenario.clone(), seed).run()
}

/// The thermal-flux multiplier of the toggled modifiers.
fn thermal_scale(moderation: bool, beam: bool, boost: Option<f64>) -> f64 {
    let mut scale = 1.0;
    if moderation {
        scale *= 1.0 + boost.unwrap_or(0.0);
    }
    if beam {
        scale *= BEAM_THERMAL_FACTOR;
    }
    scale
}

/// Credits alerts to scripted events: an alert belongs to the first
/// still-uncredited event whose hour it detects within
/// [`MAX_ONSET_DELAY`], whose onset estimate it does not precede by more
/// than [`ONSET_SLACK`], and whose direction it matches.
fn credit_alerts(
    scenario: &Scenario,
    levels: &[f64],
    fused: &[u64],
    alerts: &[Alert],
) -> Vec<EventOutcome> {
    let mut claimed = vec![false; alerts.len()];
    let mut outcomes = Vec::with_capacity(scenario.events.len());
    for (i, event) in scenario.events.iter().enumerate() {
        let t = event.at_hour as usize;
        let expected_magnitude = if levels[t - 1] > 0.0 {
            levels[t] / levels[t - 1] - 1.0
        } else {
            0.0
        };
        let expected = expected_magnitude.abs() >= MAGNITUDE_FLOOR;

        let prev = if i == 0 {
            0
        } else {
            scenario.events[i - 1].at_hour as usize
        };
        let next = scenario
            .events
            .get(i + 1)
            .map_or(fused.len(), |e| e.at_hour as usize);
        let mean = |s: &[u64]| s.iter().sum::<u64>() as f64 / s.len().max(1) as f64;
        let pre = mean(&fused[prev..t]);
        let post = mean(&fused[t..next]);
        let refined_magnitude = if pre > 0.0 { post / pre - 1.0 } else { 0.0 };

        let mut detected = false;
        let mut detection_delay = None;
        let mut alert_kind = None;
        for (j, alert) in alerts.iter().enumerate() {
            if claimed[j] {
                continue;
            }
            let at = event.at_hour as u64;
            let in_window = alert.detected_index >= at
                && alert.detected_index <= at + MAX_ONSET_DELAY
                && alert.onset_index + ONSET_SLACK >= at;
            let direction = match alert.kind {
                AlertKind::StepUp => expected_magnitude > 0.0,
                AlertKind::StepDown => expected_magnitude < 0.0,
                AlertKind::Drift => alert.magnitude * expected_magnitude > 0.0,
            };
            if in_window && direction {
                claimed[j] = true;
                detected = true;
                detection_delay = Some(alert.detected_index - at);
                alert_kind = Some(alert.kind.label());
                break;
            }
        }

        outcomes.push(EventOutcome {
            at_hour: event.at_hour,
            kind: event.kind.label(),
            value: event.kind.value_label(),
            expected,
            expected_magnitude,
            detected,
            detection_delay,
            refined_magnitude,
            alert_kind,
        });
    }
    outcomes
}

/// The verdict a fault model is expected to earn.
fn expected_verdict(kind: FaultKind) -> ChannelVerdict {
    match kind {
        FaultKind::StuckAt => ChannelVerdict::Stuck,
        FaultKind::BiasDrift { .. } => ChannelVerdict::Drift,
        FaultKind::Dropout => ChannelVerdict::Dropout,
        FaultKind::Garbage => ChannelVerdict::Garbage,
    }
}

/// The conformance contract: every expected event detected in time, no
/// uncredited alerts, every faulted channel flagged with the matching
/// verdict after its fault hour, every clean channel healthy.
fn is_conformant(
    scenario: &Scenario,
    events: &[EventOutcome],
    unmatched_alerts: u32,
    channels: &[ChannelHealth],
) -> bool {
    if unmatched_alerts > 0 {
        return false;
    }
    if events.iter().any(|e| e.expected && !e.detected) {
        return false;
    }
    channels.iter().all(|health| {
        match scenario.faults.iter().find(|f| f.channel == health.channel) {
            Some(fault) => {
                health.verdict == expected_verdict(fault.kind)
                    && health.flagged_hour.is_some_and(|h| h >= fault.at_hour)
            }
            None => health.verdict == ChannelVerdict::Healthy,
        }
    })
}

/// The names of the built-in scenarios, in their canonical order.
pub fn builtin_names() -> [&'static str; 4] {
    [
        "normal",
        "rainstorm-at-leadville",
        "loss-of-moderation",
        "detector-channel-drift",
    ]
}

/// Looks a built-in scenario up by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    let text = match name {
        // A stationary campaign in the NYC reference machine room: ten
        // days, no events, no faults. Conformance = zero alerts.
        "normal" => {
            r#"{
                "name": "normal",
                "duration_hours": 240,
                "channels": 3,
                "location": "new-york",
                "weather": "sunny",
                "surroundings": "machine-room"
            }"#
        }
        // A thunderstorm front crosses the high-altitude site: thermal
        // flux doubles for three days, then clears (paper §VI: storm
        // thermals run 2x the sunny-day field).
        "rainstorm-at-leadville" => {
            r#"{
                "name": "rainstorm-at-leadville",
                "duration_hours": 264,
                "channels": 3,
                "location": "leadville",
                "weather": "sunny",
                "surroundings": "concrete-floor",
                "events": [
                    {"at_hour": 120, "kind": "weather", "value": "thunderstorm"},
                    {"at_hour": 192, "kind": "weather", "value": "sunny"}
                ]
            }"#
        }
        // The paper's Figure-6 water-pan step in reverse: the campaign
        // starts with the moderator in place and loses it at hour 120 —
        // a step *down* by the MC-derived boost.
        "loss-of-moderation" => {
            r#"{
                "name": "loss-of-moderation",
                "duration_hours": 216,
                "channels": 3,
                "location": "los-alamos",
                "weather": "sunny",
                "surroundings": "concrete-floor",
                "moderation": true,
                "events": [
                    {"at_hour": 120, "kind": "moderation_off"}
                ]
            }"#
        }
        // A quiet campaign whose channel 1 develops a slow gain drift:
        // the environment never changes, so conformance = zero alerts
        // AND the drifting channel flagged while voting holds the fused
        // rate.
        "detector-channel-drift" => {
            r#"{
                "name": "detector-channel-drift",
                "duration_hours": 240,
                "channels": 3,
                "location": "new-york",
                "weather": "sunny",
                "surroundings": "machine-room",
                "faults": [
                    {"at_hour": 96, "channel": 1, "kind": "bias_drift", "per_hour": 0.01}
                ]
            }"#
        }
        _ => return None,
    };
    Some(Scenario::from_json(text).expect("built-in scenarios validate"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() {
        tn_obs::set_level(Some(tn_obs::Level::Error));
    }

    #[test]
    fn builtin_lookup_is_total_over_the_name_list() {
        for name in builtin_names() {
            let s = builtin(name).expect(name);
            assert_eq!(s.name, name);
        }
        assert!(builtin("no-such-scenario").is_none());
    }

    #[test]
    fn normal_scenario_raises_no_alerts_and_conforms() {
        quiet();
        let report = run_scenario(&builtin("normal").unwrap(), 2020);
        assert!(report.alerts.is_empty(), "{:?}", report.alerts);
        assert_eq!(report.unmatched_alerts, 0);
        assert!(report.conformant);
        assert!(report.moderation_boost.is_none());
        assert!(report.baseline_rate > 0.0);
    }

    #[test]
    fn rainstorm_events_are_both_detected_in_time() {
        quiet();
        let report = run_scenario(&builtin("rainstorm-at-leadville").unwrap(), 2020);
        assert_eq!(report.events.len(), 2);
        for event in &report.events {
            assert!(event.expected, "storm steps are large: {event:?}");
            assert!(event.detected, "{event:?}");
            assert!(event.detection_delay.unwrap() <= MAX_ONSET_DELAY);
        }
        assert!(report.events[0].expected_magnitude > 0.5);
        assert!(report.events[1].expected_magnitude < -0.3);
        assert!(report.conformant, "alerts: {:?}", report.alerts);
    }

    #[test]
    fn loss_of_moderation_steps_down_by_the_derived_boost() {
        quiet();
        let report = run_scenario(&builtin("loss-of-moderation").unwrap(), 2020);
        let boost = report.moderation_boost.expect("uses moderation");
        assert!(boost > 0.1, "boost {boost}");
        let event = &report.events[0];
        let expected = 1.0 / (1.0 + boost) - 1.0;
        assert!((event.expected_magnitude - expected).abs() < 1e-9);
        assert!(event.detected, "{event:?}");
        assert_eq!(event.alert_kind, Some("step_down"));
        assert!(
            (event.refined_magnitude - expected).abs() < 0.05,
            "refined {} vs expected {expected}",
            event.refined_magnitude
        );
        assert!(report.conformant);
    }

    #[test]
    fn channel_drift_is_flagged_while_the_fused_rate_holds() {
        quiet();
        let seed = 2020;
        let drift = run_scenario(&builtin("detector-channel-drift").unwrap(), seed);
        let normal = run_scenario(&builtin("normal").unwrap(), seed);
        assert!(drift.alerts.is_empty(), "{:?}", drift.alerts);
        let flagged = &drift.channels[1];
        assert_eq!(flagged.verdict, ChannelVerdict::Drift);
        assert!(flagged.flagged_hour.unwrap() >= 96);
        assert!(drift.conformant);
        let ratio = drift.fused_mean_rate / normal.fused_mean_rate;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "2oo3 voting must hold the fused rate: ratio {ratio}"
        );
    }

    #[test]
    fn reports_are_byte_deterministic() {
        quiet();
        for name in builtin_names() {
            let scenario = builtin(name).unwrap();
            let a = run_scenario(&scenario, 7).to_json();
            let b = run_scenario(&scenario, 7).to_json();
            assert_eq!(a, b, "{name}");
        }
    }

    #[test]
    fn report_json_parses_and_embeds_the_scenario() {
        quiet();
        let report = run_scenario(&builtin("normal").unwrap(), 3);
        let doc = tn_core::json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("scenario").and_then(|s| s.get("name")).and_then(Json::as_str),
            Some("normal")
        );
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("conformant").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("samples").and_then(Json::as_u64), Some(240));
    }

    #[test]
    fn beam_toggle_is_a_detectable_square_pulse() {
        quiet();
        let text = r#"{
            "name": "beam-pulse",
            "duration_hours": 240,
            "location": "new-york",
            "events": [
                {"at_hour": 100, "kind": "beam_on"},
                {"at_hour": 180, "kind": "beam_off"}
            ]
        }"#;
        let scenario = Scenario::from_json(text).unwrap();
        let report = run_scenario(&scenario, 2020);
        assert!(report.events.iter().all(|e| e.detected), "{:?}", report.events);
        assert!((report.events[0].expected_magnitude - 3.0).abs() < 1e-9);
        assert!(report.conformant);
    }
}
