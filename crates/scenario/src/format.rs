//! The declarative scenario file format.
//!
//! A scenario is a single JSON document describing a campaign: where the
//! detector array sits, how many channels it has, a timeline of
//! environment events (weather fronts, altitude moves, moderation
//! on/off, a calibration beam), and per-channel fault injections. The
//! document is parsed with the in-tree `tn_core::json` layer — no
//! external dependencies — and re-serialises canonically, so
//! parse → serialise is a byte-exact fixed point.
//!
//! Validation is strict: unknown keys, out-of-range values, unordered
//! event timelines and no-op events are all structured
//! [`ScenarioError`]s with a JSON-pointer-style path, never panics.

use tn_core::json::{self, Json};
use tn_environment::{Environment, Location, Surroundings, Weather};

/// Scenario durations shorter than this cannot cover the monitor's
/// warmup segment plus a detectable event.
pub const MIN_DURATION_HOURS: u32 = 24;

/// Upper bound on campaign length; keeps reports and monitor ring
/// buffers bounded.
pub const MAX_DURATION_HOURS: u32 = 2_400;

/// Largest detector array the format accepts.
pub const MAX_CHANNELS: u8 = 8;

/// Largest per-hour relative drift a `bias_drift` fault may apply.
pub const MAX_DRIFT_PER_HOUR: f64 = 0.2;

/// A structured validation or parse failure: the JSON-pointer-ish path
/// of the offending element plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Dotted path into the document (`$.events[3].at_hour`).
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl ScenarioError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// A named geographic site the format can reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocationPreset {
    /// New York City — the sea-level reference.
    NewYork,
    /// Leadville, CO — the paper's high-altitude site.
    Leadville,
    /// Los Alamos, NM — the Tin-II deployment site.
    LosAlamos,
}

impl LocationPreset {
    /// Every preset, for sweeps and generators.
    pub const ALL: [LocationPreset; 3] = [
        LocationPreset::NewYork,
        LocationPreset::Leadville,
        LocationPreset::LosAlamos,
    ];

    /// The stable document label.
    pub fn label(self) -> &'static str {
        match self {
            LocationPreset::NewYork => "new-york",
            LocationPreset::Leadville => "leadville",
            LocationPreset::LosAlamos => "los-alamos",
        }
    }

    /// Parses a document label.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }

    /// The concrete location.
    pub fn location(self) -> Location {
        match self {
            LocationPreset::NewYork => Location::new_york(),
            LocationPreset::Leadville => Location::leadville(),
            LocationPreset::LosAlamos => Location::los_alamos(),
        }
    }
}

/// A named surroundings configuration the format can reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurroundingsPreset {
    /// Open air, no moderators.
    Outdoors,
    /// Over a concrete slab (+20 % thermal).
    ConcreteFloor,
    /// Next to cooling water (+24 % thermal).
    WaterCooled,
    /// Liquid-cooled machine room (+44 % thermal).
    MachineRoom,
}

impl SurroundingsPreset {
    /// Every preset, for sweeps and generators.
    pub const ALL: [SurroundingsPreset; 4] = [
        SurroundingsPreset::Outdoors,
        SurroundingsPreset::ConcreteFloor,
        SurroundingsPreset::WaterCooled,
        SurroundingsPreset::MachineRoom,
    ];

    /// The stable document label.
    pub fn label(self) -> &'static str {
        match self {
            SurroundingsPreset::Outdoors => "outdoors",
            SurroundingsPreset::ConcreteFloor => "concrete-floor",
            SurroundingsPreset::WaterCooled => "water-cooled",
            SurroundingsPreset::MachineRoom => "machine-room",
        }
    }

    /// Parses a document label.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }

    /// The concrete surroundings.
    pub fn surroundings(self) -> Surroundings {
        match self {
            SurroundingsPreset::Outdoors => Surroundings::outdoors(),
            SurroundingsPreset::ConcreteFloor => Surroundings::concrete_floor(),
            SurroundingsPreset::WaterCooled => Surroundings::water_cooled(),
            SurroundingsPreset::MachineRoom => Surroundings::hpc_machine_room(),
        }
    }
}

/// What a scripted timeline event does to the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The weather changes (rain ×1.5, thunderstorm ×2, …).
    Weather(Weather),
    /// The surrounding materials change (concrete +20 %, …).
    Surroundings(SurroundingsPreset),
    /// The whole rig moves to a different site (altitude change).
    Move(LocationPreset),
    /// A water pan is placed over the array (MC-derived thermal boost).
    ModerationOn,
    /// The water pan is removed — the paper's Figure-6 step in reverse.
    ModerationOff,
    /// A calibration thermal beam switches on.
    BeamOn,
    /// The calibration beam switches off.
    BeamOff,
}

impl EventKind {
    /// The stable `kind` label of this event.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Weather(_) => "weather",
            EventKind::Surroundings(_) => "surroundings",
            EventKind::Move(_) => "move",
            EventKind::ModerationOn => "moderation_on",
            EventKind::ModerationOff => "moderation_off",
            EventKind::BeamOn => "beam_on",
            EventKind::BeamOff => "beam_off",
        }
    }

    /// The `value` label for parameterised kinds (`None` for toggles).
    pub fn value_label(&self) -> Option<&'static str> {
        match self {
            EventKind::Weather(w) => Some(weather_label(*w)),
            EventKind::Surroundings(s) => Some(s.label()),
            EventKind::Move(l) => Some(l.label()),
            _ => None,
        }
    }
}

/// The stable document label of a weather condition.
pub fn weather_label(weather: Weather) -> &'static str {
    match weather {
        Weather::Sunny => "sunny",
        Weather::Rainy => "rainy",
        Weather::Thunderstorm => "thunderstorm",
        Weather::Snowpack => "snowpack",
    }
}

/// Parses a weather document label.
pub fn weather_from_label(label: &str) -> Option<Weather> {
    Weather::ALL.into_iter().find(|w| weather_label(*w) == label)
}

/// One scripted environment change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioEvent {
    /// Hour (1-based sample index) at which the change takes effect.
    pub at_hour: u32,
    /// What changes.
    pub kind: EventKind,
}

/// A detector-channel fault model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The channel freezes at its last good reading.
    StuckAt,
    /// The channel's gain drifts by a relative factor every hour.
    BiasDrift {
        /// Relative gain change per hour (non-zero, |x| ≤ 0.2).
        per_hour: f64,
    },
    /// The channel stops reporting entirely.
    Dropout,
    /// The channel reports NaNs and absurd values.
    Garbage,
}

impl FaultKind {
    /// The stable `kind` label of this fault.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::StuckAt => "stuck_at",
            FaultKind::BiasDrift { .. } => "bias_drift",
            FaultKind::Dropout => "dropout",
            FaultKind::Garbage => "garbage",
        }
    }
}

/// A fault injected into one channel at a scripted hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFault {
    /// Which channel misbehaves (0-based).
    pub channel: u8,
    /// Hour from which the fault is active.
    pub at_hour: u32,
    /// The fault model.
    pub kind: FaultKind,
}

/// A complete parsed and validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short machine-friendly name (`[a-z0-9_-]{1,64}`).
    pub name: String,
    /// Campaign length in hourly samples.
    pub duration_hours: u32,
    /// Detector channels in the array (1–8; 3 gives 2oo3 voting).
    pub channels: u8,
    /// Starting site.
    pub location: LocationPreset,
    /// Starting weather.
    pub weather: Weather,
    /// Starting surroundings.
    pub surroundings: SurroundingsPreset,
    /// Whether the water-pan moderator starts in place.
    pub moderation: bool,
    /// Scripted environment changes, strictly ordered by hour.
    pub events: Vec<ScenarioEvent>,
    /// Injected channel faults (at most one per channel).
    pub faults: Vec<ChannelFault>,
}

impl Scenario {
    /// The starting environment this scenario describes.
    pub fn initial_environment(&self) -> Environment {
        Environment::new(
            self.location.location(),
            self.weather,
            self.surroundings.surroundings(),
        )
    }

    /// True when the campaign ever has the water-pan moderator in place
    /// (initially or via a scripted event), i.e. when running it needs
    /// the Monte-Carlo boost derivation.
    pub fn uses_moderation(&self) -> bool {
        self.moderation
            || self
                .events
                .iter()
                .any(|e| matches!(e.kind, EventKind::ModerationOn | EventKind::ModerationOff))
    }

    /// Parses and validates a scenario document.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let doc = json::parse(text)
            .map_err(|e| ScenarioError::new("$", format!("{e}")))?;
        Self::from_value(&doc)
    }

    /// Validates an already-parsed document.
    pub fn from_value(doc: &Json) -> Result<Self, ScenarioError> {
        let members = match doc {
            Json::Object(members) => members,
            _ => return Err(ScenarioError::new("$", "scenario must be a JSON object")),
        };
        const KNOWN: [&str; 9] = [
            "name",
            "duration_hours",
            "channels",
            "location",
            "weather",
            "surroundings",
            "moderation",
            "events",
            "faults",
        ];
        for (key, _) in members {
            if !KNOWN.contains(&key.as_str()) {
                return Err(ScenarioError::new(
                    format!("$.{key}"),
                    "unknown scenario key",
                ));
            }
        }

        let name = req_str(doc, "name")?;
        validate_name(&name)?;
        let duration_hours = req_u32(doc, "duration_hours")?;
        if !(MIN_DURATION_HOURS..=MAX_DURATION_HOURS).contains(&duration_hours) {
            return Err(ScenarioError::new(
                "$.duration_hours",
                format!("must be in {MIN_DURATION_HOURS}..={MAX_DURATION_HOURS}"),
            ));
        }
        let channels = match doc.get("channels") {
            None => 3,
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| ScenarioError::new("$.channels", "must be an integer"))?;
                if !(1..=MAX_CHANNELS as u64).contains(&n) {
                    return Err(ScenarioError::new(
                        "$.channels",
                        format!("must be in 1..={MAX_CHANNELS}"),
                    ));
                }
                n as u8
            }
        };
        let location = LocationPreset::from_label(&req_str(doc, "location")?)
            .ok_or_else(|| ScenarioError::new("$.location", "unknown location preset"))?;
        let weather = match doc.get("weather") {
            None => Weather::Sunny,
            Some(v) => {
                let label = v
                    .as_str()
                    .ok_or_else(|| ScenarioError::new("$.weather", "must be a string"))?;
                weather_from_label(label)
                    .ok_or_else(|| ScenarioError::new("$.weather", "unknown weather"))?
            }
        };
        let surroundings = match doc.get("surroundings") {
            None => SurroundingsPreset::MachineRoom,
            Some(v) => {
                let label = v
                    .as_str()
                    .ok_or_else(|| ScenarioError::new("$.surroundings", "must be a string"))?;
                SurroundingsPreset::from_label(label)
                    .ok_or_else(|| ScenarioError::new("$.surroundings", "unknown surroundings"))?
            }
        };
        let moderation = match doc.get("moderation") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ScenarioError::new("$.moderation", "must be a boolean"))?,
        };

        let events = match doc.get("events") {
            None => Vec::new(),
            Some(v) => parse_events(v)?,
        };
        let faults = match doc.get("faults") {
            None => Vec::new(),
            Some(v) => parse_faults(v, channels)?,
        };

        let scenario = Scenario {
            name,
            duration_hours,
            channels,
            location,
            weather,
            surroundings,
            moderation,
            events,
            faults,
        };
        scenario.validate_timeline()?;
        Ok(scenario)
    }

    /// Checks event ordering, bounds, and that every event actually
    /// changes the environment state (no-ops are authoring mistakes).
    fn validate_timeline(&self) -> Result<(), ScenarioError> {
        let mut state = (
            self.location,
            self.weather,
            self.surroundings,
            self.moderation,
            false, // beam
        );
        let mut last_hour = 0u32;
        for (i, event) in self.events.iter().enumerate() {
            let path = format!("$.events[{i}]");
            if event.at_hour <= last_hour && i > 0 {
                return Err(ScenarioError::new(
                    format!("{path}.at_hour"),
                    "event hours must be strictly increasing",
                ));
            }
            if event.at_hour < 1 || event.at_hour >= self.duration_hours {
                return Err(ScenarioError::new(
                    format!("{path}.at_hour"),
                    format!("must be in 1..{}", self.duration_hours),
                ));
            }
            let next = apply_event(state, event.kind);
            if next == state {
                return Err(ScenarioError::new(
                    path,
                    "event does not change the environment (no-op)",
                ));
            }
            state = next;
            last_hour = event.at_hour;
        }
        for (i, fault) in self.faults.iter().enumerate() {
            let path = format!("$.faults[{i}]");
            if fault.at_hour < 1 || fault.at_hour >= self.duration_hours {
                return Err(ScenarioError::new(
                    format!("{path}.at_hour"),
                    format!("must be in 1..{}", self.duration_hours),
                ));
            }
        }
        Ok(())
    }

    /// Serialises to the canonical document form (sorted keys, canonical
    /// numbers): parse → `to_json` is a byte-exact fixed point.
    pub fn to_json(&self) -> String {
        self.to_value().to_canonical_string()
    }

    /// Builds the document tree for this scenario.
    pub fn to_value(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut members = vec![
                    ("at_hour".to_string(), Json::Num(e.at_hour as f64)),
                    ("kind".to_string(), Json::Str(e.kind.label().to_string())),
                ];
                if let Some(value) = e.kind.value_label() {
                    members.push(("value".to_string(), Json::Str(value.to_string())));
                }
                Json::Object(members)
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| {
                let mut members = vec![
                    ("at_hour".to_string(), Json::Num(f.at_hour as f64)),
                    ("channel".to_string(), Json::Num(f.channel as f64)),
                    ("kind".to_string(), Json::Str(f.kind.label().to_string())),
                ];
                if let FaultKind::BiasDrift { per_hour } = f.kind {
                    members.push(("per_hour".to_string(), Json::Num(per_hour)));
                }
                Json::Object(members)
            })
            .collect();
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "duration_hours".to_string(),
                Json::Num(self.duration_hours as f64),
            ),
            ("channels".to_string(), Json::Num(self.channels as f64)),
            (
                "location".to_string(),
                Json::Str(self.location.label().to_string()),
            ),
            (
                "weather".to_string(),
                Json::Str(weather_label(self.weather).to_string()),
            ),
            (
                "surroundings".to_string(),
                Json::Str(self.surroundings.label().to_string()),
            ),
            ("moderation".to_string(), Json::Bool(self.moderation)),
            ("events".to_string(), Json::Array(events)),
            ("faults".to_string(), Json::Array(faults)),
        ])
    }
}

/// Environment state tuple used for no-op detection.
type EnvState = (LocationPreset, Weather, SurroundingsPreset, bool, bool);

/// Applies an event to the `(location, weather, surroundings,
/// moderation, beam)` state tuple.
fn apply_event(state: EnvState, kind: EventKind) -> EnvState {
    let (mut loc, mut weather, mut surr, mut moderation, mut beam) = state;
    match kind {
        EventKind::Weather(w) => weather = w,
        EventKind::Surroundings(s) => surr = s,
        EventKind::Move(l) => loc = l,
        EventKind::ModerationOn => moderation = true,
        EventKind::ModerationOff => moderation = false,
        EventKind::BeamOn => beam = true,
        EventKind::BeamOff => beam = false,
    }
    (loc, weather, surr, moderation, beam)
}

fn validate_name(name: &str) -> Result<(), ScenarioError> {
    if name.is_empty() || name.len() > 64 {
        return Err(ScenarioError::new("$.name", "must be 1..=64 characters"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
    {
        return Err(ScenarioError::new(
            "$.name",
            "only lowercase letters, digits, `-` and `_` are allowed",
        ));
    }
    Ok(())
}

fn req_str(doc: &Json, key: &str) -> Result<String, ScenarioError> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ScenarioError::new(format!("$.{key}"), "required string missing"))
}

fn req_u32(doc: &Json, key: &str) -> Result<u32, ScenarioError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .filter(|&n| n <= u32::MAX as u64)
        .map(|n| n as u32)
        .ok_or_else(|| ScenarioError::new(format!("$.{key}"), "required integer missing"))
}

fn parse_events(value: &Json) -> Result<Vec<ScenarioEvent>, ScenarioError> {
    let items = value
        .as_array()
        .ok_or_else(|| ScenarioError::new("$.events", "must be an array"))?;
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("$.events[{i}]");
        let members = match item {
            Json::Object(members) => members,
            _ => return Err(ScenarioError::new(path, "event must be an object")),
        };
        for (key, _) in members {
            if !["at_hour", "kind", "value"].contains(&key.as_str()) {
                return Err(ScenarioError::new(
                    format!("{path}.{key}"),
                    "unknown event key",
                ));
            }
        }
        let at_hour = item
            .get("at_hour")
            .and_then(Json::as_u64)
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| {
                ScenarioError::new(format!("{path}.at_hour"), "required integer missing")
            })? as u32;
        let kind_label = item
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ScenarioError::new(format!("{path}.kind"), "required string missing"))?;
        let value = item.get("value").and_then(Json::as_str);
        let value_of = |what: &str| {
            value.ok_or_else(|| {
                ScenarioError::new(format!("{path}.value"), format!("required {what} missing"))
            })
        };
        let kind = match kind_label {
            "weather" => EventKind::Weather(weather_from_label(value_of("weather label")?).ok_or_else(
                || ScenarioError::new(format!("{path}.value"), "unknown weather"),
            )?),
            "surroundings" => EventKind::Surroundings(
                SurroundingsPreset::from_label(value_of("surroundings label")?).ok_or_else(|| {
                    ScenarioError::new(format!("{path}.value"), "unknown surroundings")
                })?,
            ),
            "move" => EventKind::Move(
                LocationPreset::from_label(value_of("location label")?).ok_or_else(|| {
                    ScenarioError::new(format!("{path}.value"), "unknown location preset")
                })?,
            ),
            "moderation_on" => EventKind::ModerationOn,
            "moderation_off" => EventKind::ModerationOff,
            "beam_on" => EventKind::BeamOn,
            "beam_off" => EventKind::BeamOff,
            _ => {
                return Err(ScenarioError::new(
                    format!("{path}.kind"),
                    "unknown event kind",
                ))
            }
        };
        if kind.value_label().is_none() && value.is_some() {
            return Err(ScenarioError::new(
                format!("{path}.value"),
                "toggle events take no value",
            ));
        }
        events.push(ScenarioEvent { at_hour, kind });
    }
    Ok(events)
}

fn parse_faults(value: &Json, channels: u8) -> Result<Vec<ChannelFault>, ScenarioError> {
    let items = value
        .as_array()
        .ok_or_else(|| ScenarioError::new("$.faults", "must be an array"))?;
    let mut faults: Vec<ChannelFault> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("$.faults[{i}]");
        let members = match item {
            Json::Object(members) => members,
            _ => return Err(ScenarioError::new(path, "fault must be an object")),
        };
        for (key, _) in members {
            if !["at_hour", "channel", "kind", "per_hour"].contains(&key.as_str()) {
                return Err(ScenarioError::new(
                    format!("{path}.{key}"),
                    "unknown fault key",
                ));
            }
        }
        let channel = item
            .get("channel")
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                ScenarioError::new(format!("{path}.channel"), "required integer missing")
            })?;
        if channel >= channels as u64 {
            return Err(ScenarioError::new(
                format!("{path}.channel"),
                format!("must be below the channel count ({channels})"),
            ));
        }
        let channel = channel as u8;
        if faults.iter().any(|f| f.channel == channel) {
            return Err(ScenarioError::new(
                format!("{path}.channel"),
                "at most one fault per channel",
            ));
        }
        let at_hour = item
            .get("at_hour")
            .and_then(Json::as_u64)
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| {
                ScenarioError::new(format!("{path}.at_hour"), "required integer missing")
            })? as u32;
        let kind_label = item
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ScenarioError::new(format!("{path}.kind"), "required string missing"))?;
        let per_hour = item.get("per_hour").and_then(Json::as_f64);
        let kind = match kind_label {
            "stuck_at" => FaultKind::StuckAt,
            "bias_drift" => {
                let per_hour = per_hour.ok_or_else(|| {
                    ScenarioError::new(format!("{path}.per_hour"), "required number missing")
                })?;
                if !per_hour.is_finite()
                    || per_hour == 0.0
                    || per_hour.abs() > MAX_DRIFT_PER_HOUR
                {
                    return Err(ScenarioError::new(
                        format!("{path}.per_hour"),
                        format!("must be non-zero with |x| <= {MAX_DRIFT_PER_HOUR}"),
                    ));
                }
                FaultKind::BiasDrift { per_hour }
            }
            "dropout" => FaultKind::Dropout,
            "garbage" => FaultKind::Garbage,
            _ => {
                return Err(ScenarioError::new(
                    format!("{path}.kind"),
                    "unknown fault kind",
                ))
            }
        };
        if !matches!(kind, FaultKind::BiasDrift { .. }) && per_hour.is_some() {
            return Err(ScenarioError::new(
                format!("{path}.per_hour"),
                "only bias_drift faults take per_hour",
            ));
        }
        faults.push(ChannelFault {
            channel,
            at_hour,
            kind,
        });
    }
    Ok(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_rng::Rng;

    fn minimal() -> String {
        r#"{"name":"t","duration_hours":48,"location":"new-york"}"#.to_string()
    }

    #[test]
    fn minimal_document_gets_defaults() {
        let s = Scenario::from_json(&minimal()).unwrap();
        assert_eq!(s.channels, 3);
        assert_eq!(s.weather, Weather::Sunny);
        assert_eq!(s.surroundings, SurroundingsPreset::MachineRoom);
        assert!(!s.moderation);
        assert!(s.events.is_empty() && s.faults.is_empty());
    }

    #[test]
    fn full_document_round_trips_byte_exact() {
        let text = r#"{
            "name": "full", "duration_hours": 240, "channels": 4,
            "location": "leadville", "weather": "rainy",
            "surroundings": "concrete-floor", "moderation": true,
            "events": [
                {"at_hour": 60, "kind": "weather", "value": "thunderstorm"},
                {"at_hour": 130, "kind": "moderation_off"},
                {"at_hour": 200, "kind": "beam_on"}
            ],
            "faults": [
                {"at_hour": 100, "channel": 2, "kind": "bias_drift", "per_hour": 0.01},
                {"at_hour": 30, "channel": 0, "kind": "dropout"}
            ]
        }"#;
        let s = Scenario::from_json(text).unwrap();
        let canonical = s.to_json();
        let reparsed = Scenario::from_json(&canonical).unwrap();
        assert_eq!(s, reparsed);
        assert_eq!(canonical, reparsed.to_json(), "canonical form is a fixed point");
    }

    /// Builds a random valid scenario from a seeded generator.
    fn random_scenario(rng: &mut Rng) -> Scenario {
        let duration = rng.gen_range(MIN_DURATION_HOURS..=600u32);
        let channels = rng.gen_range(1..=MAX_CHANNELS as u32) as u8;
        let mut events = Vec::new();
        let mut state = (
            LocationPreset::NewYork,
            Weather::Sunny,
            SurroundingsPreset::MachineRoom,
            false,
            false,
        );
        let mut hour = 1u32;
        for _ in 0..rng.gen_range(0..=5u32) {
            hour += rng.gen_range(1..=40u32);
            if hour >= duration {
                break;
            }
            // Pick a kind that is guaranteed not to be a no-op.
            let kind = match rng.gen_range(0..=4u32) {
                0 => {
                    let options: Vec<Weather> =
                        Weather::ALL.into_iter().filter(|w| *w != state.1).collect();
                    EventKind::Weather(options[rng.gen_range(0..options.len() as u32) as usize])
                }
                1 => {
                    let options: Vec<SurroundingsPreset> = SurroundingsPreset::ALL
                        .into_iter()
                        .filter(|s| *s != state.2)
                        .collect();
                    EventKind::Surroundings(
                        options[rng.gen_range(0..options.len() as u32) as usize],
                    )
                }
                2 => {
                    let options: Vec<LocationPreset> = LocationPreset::ALL
                        .into_iter()
                        .filter(|l| *l != state.0)
                        .collect();
                    EventKind::Move(options[rng.gen_range(0..options.len() as u32) as usize])
                }
                3 => {
                    if state.3 {
                        EventKind::ModerationOff
                    } else {
                        EventKind::ModerationOn
                    }
                }
                _ => {
                    if state.4 {
                        EventKind::BeamOff
                    } else {
                        EventKind::BeamOn
                    }
                }
            };
            state = apply_event(state, kind);
            events.push(ScenarioEvent { at_hour: hour, kind });
        }
        let mut faults = Vec::new();
        for channel in 0..channels {
            if rng.gen_bool(0.3) {
                let kind = match rng.gen_range(0..=3u32) {
                    0 => FaultKind::StuckAt,
                    1 => FaultKind::BiasDrift {
                        per_hour: rng.gen_range(1..=20u32) as f64 / 100.0
                            * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                    },
                    2 => FaultKind::Dropout,
                    _ => FaultKind::Garbage,
                };
                faults.push(ChannelFault {
                    channel,
                    at_hour: rng.gen_range(1..duration),
                    kind,
                });
            }
        }
        Scenario {
            name: format!("gen-{}", rng.gen_range(0..1000u32)),
            duration_hours: duration,
            channels,
            location: LocationPreset::NewYork,
            weather: Weather::Sunny,
            surroundings: SurroundingsPreset::MachineRoom,
            moderation: false,
            events,
            faults,
        }
    }

    #[test]
    fn generated_scenarios_round_trip_byte_exact() {
        // Satellite: fixed-seed generator loop. Random valid scenarios
        // must validate, serialise canonically, and re-parse to both the
        // same value and the same bytes.
        let mut rng = Rng::seed_from_u64(0x5CE11A);
        for case in 0..200 {
            let s = random_scenario(&mut rng);
            let text = s.to_json();
            let parsed = Scenario::from_json(&text)
                .unwrap_or_else(|e| panic!("case {case}: generated scenario rejected: {e}\n{text}"));
            assert_eq!(parsed, s, "case {case}");
            assert_eq!(parsed.to_json(), text, "case {case}: byte-exact round trip");
        }
    }

    #[test]
    fn mutated_documents_error_and_never_panic() {
        // Satellite: adversarial mutations of a valid document must all
        // produce structured errors (or a still-valid document), never a
        // panic. Deterministic byte-level mutations at a fixed seed.
        let base = Scenario::from_json(&minimal()).unwrap().to_json();
        let mut rng = Rng::seed_from_u64(0xBADCA5E);
        for _ in 0..500 {
            let mut bytes = base.clone().into_bytes();
            for _ in 0..rng.gen_range(1..=4u32) {
                let pos = rng.gen_range(0..bytes.len() as u32) as usize;
                match rng.gen_range(0..3u32) {
                    0 => bytes[pos] = rng.gen_range(0x20..0x7f_u32) as u8,
                    1 => {
                        bytes.remove(pos);
                    }
                    _ => bytes.insert(pos, rng.gen_range(0x20..0x7f_u32) as u8),
                }
            }
            if let Ok(text) = String::from_utf8(bytes) {
                // Either outcome is fine; panicking is not.
                let _ = Scenario::from_json(&text);
            }
        }
    }

    #[test]
    fn adversarial_documents_produce_structured_errors() {
        let cases: &[(&str, &str)] = &[
            ("[]", "$"),
            ("{", "$"),
            (r#"{"name":"x","duration_hours":48,"location":"mars"}"#, "$.location"),
            (r#"{"name":"x","duration_hours":48,"location":"new-york","bogus":1}"#, "$.bogus"),
            (r#"{"name":"BAD","duration_hours":48,"location":"new-york"}"#, "$.name"),
            (r#"{"name":"x","duration_hours":5,"location":"new-york"}"#, "$.duration_hours"),
            (r#"{"name":"x","duration_hours":48,"location":"new-york","channels":0}"#, "$.channels"),
            (r#"{"name":"x","duration_hours":48,"location":"new-york","channels":9}"#, "$.channels"),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","events":[{"at_hour":0,"kind":"beam_on"}]}"#,
                "$.events[0].at_hour",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","events":[{"at_hour":10,"kind":"beam_on"},{"at_hour":10,"kind":"beam_off"}]}"#,
                "$.events[1].at_hour",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","events":[{"at_hour":10,"kind":"weather","value":"sunny"}]}"#,
                "$.events[0]",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","events":[{"at_hour":10,"kind":"beam_on","value":"x"}]}"#,
                "$.events[0].value",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","faults":[{"at_hour":10,"channel":3,"kind":"dropout"}]}"#,
                "$.faults[0].channel",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","faults":[{"at_hour":10,"channel":0,"kind":"bias_drift","per_hour":0.5}]}"#,
                "$.faults[0].per_hour",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","faults":[{"at_hour":10,"channel":0,"kind":"dropout"},{"at_hour":12,"channel":0,"kind":"garbage"}]}"#,
                "$.faults[1].channel",
            ),
            (
                r#"{"name":"x","duration_hours":48,"location":"new-york","faults":[{"at_hour":10,"channel":0,"kind":"dropout","per_hour":0.1}]}"#,
                "$.faults[0].per_hour",
            ),
        ];
        for (text, want_path) in cases {
            let err = Scenario::from_json(text).expect_err(text);
            assert!(
                err.path.starts_with(want_path),
                "`{text}` flagged at {} (wanted {want_path})",
                err.path
            );
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn uses_moderation_covers_initial_state_and_events() {
        let mut s = Scenario::from_json(&minimal()).unwrap();
        assert!(!s.uses_moderation());
        s.moderation = true;
        assert!(s.uses_moderation());
        s.moderation = false;
        s.events.push(ScenarioEvent {
            at_hour: 10,
            kind: EventKind::ModerationOn,
        });
        assert!(s.uses_moderation());
    }

    #[test]
    fn error_display_includes_path() {
        let err = Scenario::from_json("{}").unwrap_err();
        assert!(format!("{err}").contains("$."));
    }
}
