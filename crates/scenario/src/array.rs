//! Multi-channel Tin-II arrays: fault injection, 2oo3-style voting and
//! per-channel health monitoring.
//!
//! Each channel is an independent Tin-II pair with its own forked RNG
//! stream, so the array's hourly truth counts are independent Poisson
//! draws around the same environment-driven mean. Injected faults
//! corrupt the *reading* a channel reports, never the underlying
//! physics; the fused estimate is the median of the finite readings
//! from channels not yet flagged unhealthy — with three channels this
//! is exactly 2-out-of-3 voting, robust to a single arbitrary failure.
//!
//! Health monitoring is windowed: a channel is flagged when its last
//! [`HEALTH_WINDOW`] readings are unanimously pathological (all absent,
//! all garbage, all frozen, or all far from the fused estimate), which
//! keeps single-sample Poisson flukes from condemning a good channel.

use crate::format::{ChannelFault, FaultKind};
use std::collections::VecDeque;
use tn_detector::TinII;
use tn_environment::Environment;
use tn_physics::units::Seconds;
use tn_rng::Rng;

/// Consecutive pathological readings required to flag a channel.
pub const HEALTH_WINDOW: usize = 6;

/// Readings above this are garbage regardless of environment — no
/// terrestrial Tin-II bin reaches ten million counts.
pub const GARBAGE_COUNT: f64 = 1.0e7;

/// Health verdict for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// The channel tracks the fused estimate.
    Healthy,
    /// The reading has frozen at a constant value.
    Stuck,
    /// The reading deviates persistently from the fused estimate.
    Drift,
    /// The channel has stopped reporting.
    Dropout,
    /// The channel reports non-finite or absurd values.
    Garbage,
}

impl ChannelVerdict {
    /// Stable lower-snake label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ChannelVerdict::Healthy => "healthy",
            ChannelVerdict::Stuck => "stuck",
            ChannelVerdict::Drift => "drift",
            ChannelVerdict::Dropout => "dropout",
            ChannelVerdict::Garbage => "garbage",
        }
    }
}

/// The health outcome of one channel after a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelHealth {
    /// Channel index (0-based).
    pub channel: u8,
    /// Final verdict.
    pub verdict: ChannelVerdict,
    /// Hour at which the channel was flagged (`None` while healthy).
    pub flagged_hour: Option<u32>,
}

/// One fused array sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySample {
    /// Raw per-channel readings (`None` = dropout).
    pub readings: Vec<Option<f64>>,
    /// The fault-tolerant fused thermal count for the hour.
    pub fused: u64,
}

struct Channel {
    detector: TinII,
    rng: Rng,
    fault: Option<ChannelFault>,
    /// Last pre-fault reading, the value a stuck-at channel freezes to.
    last_good: f64,
    /// Recent `(reading, fused)` pairs for health classification.
    history: VecDeque<(Option<f64>, f64)>,
    verdict: ChannelVerdict,
    flagged_hour: Option<u32>,
}

/// A multi-channel Tin-II array with voting and health monitoring.
pub struct DetectorArray {
    channels: Vec<Channel>,
    last_fused: u64,
}

impl std::fmt::Debug for DetectorArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorArray")
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl DetectorArray {
    /// Builds an array of `channels` independent Tin-II pairs. Each
    /// channel forks its own RNG stream from `seed`, so array runs are
    /// deterministic and channels are statistically independent.
    pub fn new(seed: u64, channels: u8, faults: &[ChannelFault]) -> Self {
        assert!(channels >= 1, "need at least one channel");
        let root = Rng::seed_from_u64(seed);
        let channels = (0..channels)
            .map(|c| Channel {
                detector: TinII::new(),
                rng: root.fork(1 + c as u64),
                fault: faults.iter().find(|f| f.channel == c).copied(),
                last_good: 0.0,
                history: VecDeque::with_capacity(HEALTH_WINDOW + 1),
                verdict: ChannelVerdict::Healthy,
                flagged_hour: None,
            })
            .collect();
        Self {
            channels,
            last_fused: 0,
        }
    }

    /// Draws one hourly sample from every channel in `env` (thermal flux
    /// scaled by `thermal_scale`), applies faults, fuses by voting and
    /// updates channel health.
    pub fn sample_hour(&mut self, hour: u32, env: &Environment, thermal_scale: f64) -> ArraySample {
        let mut readings = Vec::with_capacity(self.channels.len());
        for channel in &mut self.channels {
            let sample = channel.detector.count_series(
                env,
                Seconds::from_hours(1.0),
                thermal_scale,
                hour as f64,
                &mut channel.rng,
            );
            let truth = sample[0].bare.saturating_sub(sample[0].shielded) as f64;
            let faulted = channel
                .fault
                .filter(|f| hour >= f.at_hour)
                .map(|f| match f.kind {
                    FaultKind::StuckAt => Some(channel.last_good),
                    FaultKind::BiasDrift { per_hour } => {
                        Some(truth * (1.0 + per_hour).powi((hour - f.at_hour + 1) as i32))
                    }
                    FaultKind::Dropout => None,
                    FaultKind::Garbage => Some(if hour % 2 == 0 { f64::NAN } else { 1.0e12 }),
                });
            let reading = match faulted {
                Some(corrupted) => corrupted,
                None => {
                    channel.last_good = truth;
                    Some(truth)
                }
            };
            readings.push(reading);
        }

        // Fuse: median of the finite readings from channels not yet
        // flagged. The median of three is 2oo3 voting — one arbitrary
        // failure cannot move it beyond the span of the two good
        // channels.
        let mut votes: Vec<f64> = readings
            .iter()
            .zip(&self.channels)
            .filter(|(_, c)| c.verdict == ChannelVerdict::Healthy)
            .filter_map(|(r, _)| r.filter(|v| v.is_finite()))
            .collect();
        let fused = if votes.is_empty() {
            self.last_fused
        } else {
            votes.sort_by(|a, b| a.partial_cmp(b).expect("finite votes"));
            let mid = votes.len() / 2;
            let median = if votes.len() % 2 == 1 {
                votes[mid]
            } else {
                (votes[mid - 1] + votes[mid]) / 2.0
            };
            median.max(0.0).round() as u64
        };
        self.last_fused = fused;

        for (channel_idx, channel) in self.channels.iter_mut().enumerate() {
            channel.history.push_back((readings[channel_idx], fused as f64));
            if channel.history.len() > HEALTH_WINDOW {
                channel.history.pop_front();
            }
            if channel.verdict == ChannelVerdict::Healthy {
                if let Some(verdict) = classify(&channel.history) {
                    channel.verdict = verdict;
                    channel.flagged_hour = Some(hour);
                }
            }
        }

        ArraySample { readings, fused }
    }

    /// Current health of every channel.
    pub fn health(&self) -> Vec<ChannelHealth> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| ChannelHealth {
                channel: i as u8,
                verdict: c.verdict,
                flagged_hour: c.flagged_hour,
            })
            .collect()
    }
}

/// Classifies a full health window; `None` while the window is partial
/// or the readings look healthy.
fn classify(history: &VecDeque<(Option<f64>, f64)>) -> Option<ChannelVerdict> {
    if history.len() < HEALTH_WINDOW {
        return None;
    }
    if history.iter().all(|(r, _)| r.is_none()) {
        return Some(ChannelVerdict::Dropout);
    }
    let garbage = |r: &Option<f64>| matches!(r, Some(v) if !v.is_finite() || v.abs() > GARBAGE_COUNT);
    if history.iter().all(|(r, _)| garbage(r)) {
        return Some(ChannelVerdict::Garbage);
    }
    let values: Vec<f64> = history.iter().filter_map(|(r, _)| *r).collect();
    if values.len() == HEALTH_WINDOW {
        let (first, rest) = values.split_first().expect("full window");
        if rest.iter().all(|v| v == first) {
            return Some(ChannelVerdict::Stuck);
        }
    }
    let deviant = |(r, fused): &(Option<f64>, f64)| match r {
        Some(v) if v.is_finite() => {
            let tolerance = (0.15 * fused).max(6.0 * fused.max(0.0).sqrt()).max(10.0);
            (v - fused).abs() > tolerance
        }
        _ => true,
    };
    if history.iter().all(deviant) {
        return Some(ChannelVerdict::Drift);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_environment::{Location, Surroundings, Weather};

    fn env() -> Environment {
        Environment::new(
            Location::new_york(),
            Weather::Sunny,
            Surroundings::hpc_machine_room(),
        )
    }

    fn fault(channel: u8, at_hour: u32, kind: FaultKind) -> ChannelFault {
        ChannelFault {
            channel,
            at_hour,
            kind,
        }
    }

    fn run(array: &mut DetectorArray, hours: u32) -> Vec<ArraySample> {
        let e = env();
        (0..hours).map(|h| array.sample_hour(h, &e, 1.0)).collect()
    }

    #[test]
    fn healthy_array_fuses_near_every_channel() {
        let mut array = DetectorArray::new(7, 3, &[]);
        let samples = run(&mut array, 48);
        for s in &samples {
            let votes: Vec<f64> = s.readings.iter().filter_map(|r| *r).collect();
            assert_eq!(votes.len(), 3);
            let lo = votes.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = votes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!((s.fused as f64) >= lo.floor() && (s.fused as f64) <= hi.ceil());
        }
        assert!(array.health().iter().all(|h| h.verdict == ChannelVerdict::Healthy));
    }

    #[test]
    fn channels_are_independent_but_deterministic() {
        let mut a = DetectorArray::new(11, 3, &[]);
        let mut b = DetectorArray::new(11, 3, &[]);
        let sa = run(&mut a, 24);
        let sb = run(&mut b, 24);
        assert_eq!(sa, sb, "same seed, same samples");
        // Channels see different streams: the readings differ pairwise
        // somewhere in a day of sampling.
        assert!(sa
            .iter()
            .any(|s| s.readings[0] != s.readings[1] && s.readings[1] != s.readings[2]));
    }

    #[test]
    fn dropout_channel_is_flagged_and_excluded() {
        let mut array = DetectorArray::new(3, 3, &[fault(1, 10, FaultKind::Dropout)]);
        let samples = run(&mut array, 40);
        assert!(samples[..10].iter().all(|s| s.readings[1].is_some()));
        assert!(samples[10..].iter().all(|s| s.readings[1].is_none()));
        let health = array.health();
        assert_eq!(health[1].verdict, ChannelVerdict::Dropout);
        assert_eq!(health[1].flagged_hour, Some(10 + HEALTH_WINDOW as u32 - 1));
        assert_eq!(health[0].verdict, ChannelVerdict::Healthy);
    }

    #[test]
    fn stuck_channel_is_flagged() {
        let mut array = DetectorArray::new(5, 3, &[fault(0, 12, FaultKind::StuckAt)]);
        run(&mut array, 40);
        let health = array.health();
        assert_eq!(health[0].verdict, ChannelVerdict::Stuck);
        // The frozen value IS the last pre-fault reading, so that
        // reading already matches and the window fills one hour early.
        assert_eq!(health[0].flagged_hour, Some(12 + HEALTH_WINDOW as u32 - 2));
    }

    #[test]
    fn garbage_channel_is_flagged_without_poisoning_the_fusion() {
        let mut array = DetectorArray::new(9, 3, &[fault(2, 8, FaultKind::Garbage)]);
        let samples = run(&mut array, 40);
        let health = array.health();
        assert_eq!(health[2].verdict, ChannelVerdict::Garbage);
        // The fused estimate never explodes: median voting rejects the
        // 1e12 spikes even before the channel is flagged.
        assert!(samples.iter().all(|s| s.fused < 1_000_000));
    }

    #[test]
    fn drifting_channel_is_flagged_once_it_leaves_the_band() {
        let mut array = DetectorArray::new(
            13,
            3,
            &[fault(1, 5, FaultKind::BiasDrift { per_hour: 0.05 })],
        );
        run(&mut array, 120);
        let health = array.health();
        assert_eq!(health[1].verdict, ChannelVerdict::Drift);
        let flagged = health[1].flagged_hour.expect("flagged");
        assert!(flagged > 5, "drift takes a while to clear the noise band");
        assert!(flagged < 60, "5 %/hour drift must be caught well within 55 hours");
    }

    #[test]
    fn voting_recovers_the_true_rate_under_a_single_fault() {
        let mut clean = DetectorArray::new(21, 3, &[]);
        let mut faulty = DetectorArray::new(
            21,
            3,
            &[fault(0, 20, FaultKind::BiasDrift { per_hour: 0.02 })],
        );
        let clean_mean = run(&mut clean, 96).iter().map(|s| s.fused).sum::<u64>() as f64 / 96.0;
        let faulty_mean = run(&mut faulty, 96).iter().map(|s| s.fused).sum::<u64>() as f64 / 96.0;
        let ratio = faulty_mean / clean_mean;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "fused rate with one faulted channel within 5%: ratio {ratio}"
        );
    }

    #[test]
    fn single_channel_array_follows_its_only_reading() {
        let mut array = DetectorArray::new(2, 1, &[]);
        let samples = run(&mut array, 24);
        for s in samples {
            assert_eq!(Some(s.fused as f64), s.readings[0].map(f64::round));
        }
    }
}
