//! # tn-scenario — scriptable environment campaigns
//!
//! The scenario engine turns the rest of the workspace into its own
//! conformance harness. A scenario is a small declarative JSON document
//! (parsed with the in-tree `tn_core::json` layer) scripting a campaign
//! over virtual time: a timeline of environment events — rainstorms
//! (thermal ×1.5–2), concrete and water moderators, water-pan moderation
//! on/off, altitude moves, a calibration beam — plus per-channel fault
//! injections against a multi-channel Tin-II array.
//!
//! The [`ScenarioRunner`] advances a private virtual clock, mutates the
//! `tn-environment` state at each scripted event, fuses the array's
//! hourly counts by 2oo3-style median voting, streams them through the
//! `tn-obs` CUSUM/drift monitor, and emits a byte-deterministic
//! [`ScenarioReport`]: per-event detection latency and refined
//! magnitudes, uncredited-alert counts, and per-channel health verdicts.
//!
//! ## Example
//!
//! ```
//! use tn_scenario::{builtin, run_scenario};
//!
//! tn_obs::set_level(Some(tn_obs::Level::Error));
//! let scenario = builtin("normal").expect("built-in");
//! let report = run_scenario(&scenario, 2020);
//! assert!(report.conformant);
//! assert!(report.alerts.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod array;
pub mod format;
pub mod runner;

pub use array::{ArraySample, ChannelHealth, ChannelVerdict, DetectorArray, HEALTH_WINDOW};
pub use format::{
    ChannelFault, EventKind, FaultKind, LocationPreset, Scenario, ScenarioError, ScenarioEvent,
    SurroundingsPreset,
};
pub use runner::{
    builtin, builtin_names, run_scenario, scenario_monitor_config, EventOutcome, ScenarioReport,
    ScenarioRunner, BEAM_THERMAL_FACTOR, MAX_ONSET_DELAY, ONSET_SLACK,
};
