//! Open-loop load harness for the fleet risk service.
//!
//! The generator schedules request *arrivals* from a deterministic
//! Poisson process and measures each request's latency against its
//! **scheduled** arrival time, not against the moment the client got
//! around to sending it. That distinction is what makes the numbers
//! honest under saturation: a closed-loop client that waits for each
//! response before issuing the next silently stretches its own
//! inter-arrival gaps and hides queueing delay (coordinated omission).
//! Here, if the server falls behind, the backlog shows up where it
//! belongs — in the tail of the latency histogram.
//!
//! Determinism: worker `w` draws its inter-arrival gaps from substream
//! `Rng::seed_from_u64(seed).fork(w)` with mean `workers / rate_hz`
//! seconds, so the *schedule* is reproducible for a fixed config even
//! though measured latencies naturally vary run to run. Latencies land
//! in the shared [`tn_obs::global`] histogram
//! (`tn_fleet_load_latency_seconds`), and the report is computed from a
//! before/after snapshot delta so concurrent instrumentation elsewhere
//! in the process does not pollute it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tn_core::json::Json;
use tn_obs::{Histogram, Unit};
use tn_rng::Rng;

/// Connect/read/write timeout for one request. Generous: a cold
/// full-resolution surface build on first touch can take seconds.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(120);

/// Most requests a keep-alive worker pipelines in one write when it
/// wakes up behind schedule. Bounds client memory and keeps the
/// latency attribution honest (every request in the batch is already
/// due when the batch is sent).
const MAX_PIPELINE_BATCH: usize = 64;

/// Configuration for one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Target aggregate arrival rate, requests/second.
    pub rate_hz: f64,
    /// Measured run duration, seconds (after warmup).
    pub duration_s: f64,
    /// Concurrent open-loop workers.
    pub workers: usize,
    /// Fleet entries per request body.
    pub devices_per_request: usize,
    /// Master seed for the arrival process and body selection.
    pub seed: u64,
    /// Ask the server for quick (low-statistics) risk surfaces.
    pub quick_surfaces: bool,
    /// Reuse one connection per worker (HTTP/1.1 keep-alive) instead of
    /// connecting per request; due requests are pipelined.
    pub keep_alive: bool,
    /// Label of the server's io model, recorded in the report.
    pub io_model: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7171".to_string(),
            rate_hz: 200.0,
            duration_s: 2.0,
            workers: 4,
            devices_per_request: 8,
            seed: 7,
            quick_surfaces: true,
            keep_alive: false,
            io_model: "threads".to_string(),
        }
    }
}

/// Aggregate result of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests that completed with HTTP 200.
    pub requests: u64,
    /// Requests that failed (I/O error or non-200 status).
    pub errors: u64,
    /// Completed requests divided by measured wall time.
    pub achieved_rps: f64,
    /// Target arrival rate the schedule was drawn for.
    pub offered_rps: f64,
    /// Measured wall time, seconds.
    pub wall_s: f64,
    /// Median latency, nanoseconds (scheduled-arrival to response).
    pub p50_ns: f64,
    /// 90th-percentile latency, nanoseconds.
    pub p90_ns: f64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: f64,
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Whether the workers reused connections (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
    /// Label of the server's io model (`threads` | `epoll`).
    pub io_model: String,
}

impl LoadReport {
    /// Renders the report as the canonical `BENCH_fleet.json` document.
    pub fn to_json(&self, smoke: bool) -> Json {
        Json::Object(vec![
            ("name".to_string(), Json::Str("fleet_load".to_string())),
            ("smoke".to_string(), Json::Bool(smoke)),
            ("io_model".to_string(), Json::Str(self.io_model.clone())),
            ("keep_alive".to_string(), Json::Bool(self.keep_alive)),
            ("requests".to_string(), Json::Num(self.requests as f64)),
            ("errors".to_string(), Json::Num(self.errors as f64)),
            (
                "offered_rps".to_string(),
                Json::Num(self.offered_rps),
            ),
            (
                "achieved_rps".to_string(),
                Json::Num(self.achieved_rps),
            ),
            ("wall_s".to_string(), Json::Num(self.wall_s)),
            ("latency_p50_ns".to_string(), Json::Num(self.p50_ns)),
            ("latency_p90_ns".to_string(), Json::Num(self.p90_ns)),
            ("latency_p99_ns".to_string(), Json::Num(self.p99_ns)),
            ("latency_mean_ns".to_string(), Json::Num(self.mean_ns)),
        ])
    }
}

/// The process-wide load-latency histogram
/// (`tn_fleet_load_latency_seconds` in the global registry).
pub fn latency_histogram() -> Arc<Histogram> {
    tn_obs::global().histogram(
        "tn_fleet_load_latency_seconds",
        &[],
        "Open-loop fleet-load latency, scheduled arrival to response.",
        Unit::Nanos,
    )
}

/// Builds the request body worker `w` sends on iteration `n`: a small
/// deterministic rotation of device/site mixes, so repeated bodies
/// exercise the server's response cache the way a real fleet poller
/// would.
fn request_body(config: &LoadConfig, w: usize, n: u64) -> String {
    const DEVICES: &[&str] = &["NVIDIA K20", "NVIDIA TitanX", "Intel Xeon Phi"];
    const ALTITUDES: &[f64] = &[10.0, 1_609.0, 3_094.0];
    const SHIELDS: &[f64] = &[0.0, 1e18, 1e19, 1e20];
    // Four body variants per worker; repetition within a variant makes
    // the server's cache useful, rotation keeps it honest.
    let variant = (w as u64 * 4 + n % 4) as usize;
    let mut devices = Vec::with_capacity(config.devices_per_request);
    for k in 0..config.devices_per_request {
        let pick = variant + k;
        devices.push(Json::Object(vec![
            (
                "device".to_string(),
                Json::Str(DEVICES[pick % DEVICES.len()].to_string()),
            ),
            (
                "altitude_m".to_string(),
                Json::Num(ALTITUDES[pick % ALTITUDES.len()]),
            ),
            (
                "b10_areal_cm2".to_string(),
                Json::Num(SHIELDS[pick % SHIELDS.len()]),
            ),
            (
                "avf".to_string(),
                Json::Num(0.25 + 0.25 * ((pick % 3) as f64)),
            ),
        ]));
    }
    Json::Object(vec![
        ("devices".to_string(), Json::Array(devices)),
        ("quick".to_string(), Json::Bool(config.quick_surfaces)),
    ])
    .to_canonical_string()
}

/// Sends one `POST /v1/fleet` request over a fresh connection, asking
/// the server to close after the response (`Connection: close` — the
/// close-per-request baseline mode) and returns the HTTP status code.
fn send_request(addr: &str, body: &str) -> Result<u16, String> {
    let target = addr
        .to_string()
        .parse::<std::net::SocketAddr>()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&target, REQUEST_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(REQUEST_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(REQUEST_TIMEOUT)))
        .map_err(|e| format!("socket timeout: {e}"))?;
    stream.set_nodelay(true).ok();
    let request = format!(
        "POST /v1/fleet HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&response);
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed response: {:?}", text.get(..60)))?;
    Ok(status)
}

/// A persistent keep-alive connection to the fleet service. Requests
/// omit the `Connection` header (HTTP/1.1 defaults to keep-alive), so
/// one TCP connection serves many requests; batches of already-due
/// requests are pipelined in a single write. Responses are framed by
/// `Content-Length`, with leftover bytes kept for the next response.
struct Client {
    target: std::net::SocketAddr,
    host: String,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl Client {
    fn new(addr: &str) -> Result<Self, String> {
        let target = addr
            .parse::<std::net::SocketAddr>()
            .map_err(|e| format!("bad address {addr:?}: {e}"))?;
        Ok(Client {
            target,
            host: addr.to_string(),
            stream: None,
            buf: Vec::new(),
        })
    }

    fn stream(&mut self) -> Result<&mut TcpStream, String> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.target, REQUEST_TIMEOUT)
                .map_err(|e| format!("connect {}: {e}", self.host))?;
            stream
                .set_read_timeout(Some(REQUEST_TIMEOUT))
                .and_then(|()| stream.set_write_timeout(Some(REQUEST_TIMEOUT)))
                .map_err(|e| format!("socket timeout: {e}"))?;
            stream.set_nodelay(true).ok();
            self.buf.clear();
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends `bodies` pipelined on one connection and reads one framed
    /// response per request. Per-request results keep the batch honest:
    /// if the connection dies mid-batch, the unanswered tail counts as
    /// errors, not as silently-retried successes.
    fn exchange(&mut self, bodies: &[String]) -> Vec<Result<u16, String>> {
        let mut frames = String::new();
        for body in bodies {
            frames.push_str(&format!(
                "POST /v1/fleet HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                self.host,
                body.len()
            ));
        }
        let mut results = Vec::with_capacity(bodies.len());
        let write = self
            .stream()
            .and_then(|s| s.write_all(frames.as_bytes()).map_err(|e| format!("write: {e}")));
        if let Err(e) = write {
            self.stream = None;
            results.resize(bodies.len(), Err(e));
            return results;
        }
        while results.len() < bodies.len() {
            match self.read_response() {
                Ok(status) => {
                    results.push(Ok(status));
                    // The server announced a close (request cap, error):
                    // anything still pipelined behind it is lost.
                    if self.stream.is_none() && results.len() < bodies.len() {
                        results.resize(
                            bodies.len(),
                            Err("server closed the connection mid-batch".to_string()),
                        );
                    }
                }
                Err(e) => {
                    self.stream = None;
                    results.resize(bodies.len(), Err(e));
                }
            }
        }
        results
    }

    /// Reads one `Content-Length`-framed response; trailing bytes stay
    /// buffered for the next pipelined response.
    fn read_response(&mut self) -> Result<u16, String> {
        let head_end = self.read_until(|buf| {
            buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
        })?;
        let head = String::from_utf8_lossy(&self.buf[..head_end - 4]).into_owned();
        self.buf.drain(..head_end);
        let status = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| format!("malformed response head: {:?}", head.get(..60)))?;
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("response without Content-Length: {:?}", head.get(..120)))?;
        self.read_until(move |buf| (buf.len() >= length).then_some(length))?;
        self.buf.drain(..length);
        if head
            .lines()
            .any(|l| l.eq_ignore_ascii_case("connection: close"))
        {
            self.stream = None;
        }
        Ok(status)
    }

    fn read_until(&mut self, done: impl Fn(&[u8]) -> Option<usize>) -> Result<usize, String> {
        loop {
            if let Some(n) = done(&self.buf) {
                return Ok(n);
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self
                .stream()?
                .read(&mut chunk)
                .map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response".to_string());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Runs the open-loop load: `workers` threads, each drawing exponential
/// inter-arrival gaps with mean `workers / rate_hz` from its forked
/// substream, measuring completion against the scheduled arrival.
/// Returns an error only if the warmup request fails — a server that
/// cannot answer once would make every measured number meaningless.
pub fn run(config: &LoadConfig) -> Result<LoadReport, String> {
    assert!(config.workers >= 1, "need at least one worker");
    assert!(config.rate_hz > 0.0, "rate must be positive");
    assert!(config.devices_per_request >= 1, "need at least one device");
    let _span = tn_obs::span("fleet.load_run");

    // Warmup: one request outside the measurement window, so the first
    // surface build and cache fill do not land in the histogram.
    send_request(&config.addr, &request_body(config, 0, 0))
        .map_err(|e| format!("warmup request failed: {e}"))
        .and_then(|status| {
            if status == 200 {
                Ok(())
            } else {
                Err(format!("warmup request returned HTTP {status}"))
            }
        })?;

    let histogram = latency_histogram();
    let before = histogram.snapshot();
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(config.duration_s);
    let mean_gap_s = config.workers as f64 / config.rate_hz;

    std::thread::scope(|scope| {
        for w in 0..config.workers {
            let histogram = Arc::clone(&histogram);
            let (ok, failed) = (&ok, &failed);
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(config.seed).fork(w as u64);
                let mut client = config
                    .keep_alive
                    .then(|| Client::new(&config.addr).expect("validated address"));
                let mut gap =
                    || Duration::from_secs_f64(rng.gen_exp() * mean_gap_s);
                let mut arrival = gap();
                let mut n = 0u64;
                while arrival < deadline {
                    // Open loop: sleep to the *scheduled* arrival; if we
                    // are already late, fire immediately and let the
                    // lateness count against the latency.
                    if let Some(wait) = arrival.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    // In keep-alive mode, every further arrival that is
                    // already due joins this batch and is pipelined in
                    // one write. Each request still measures from its
                    // own scheduled arrival, so batching cannot hide
                    // lateness (no coordinated omission).
                    let mut arrivals = vec![arrival];
                    let mut bodies = vec![request_body(config, w, n)];
                    n += 1;
                    arrival += gap();
                    while client.is_some()
                        && arrivals.len() < MAX_PIPELINE_BATCH
                        && arrival < deadline
                        && arrival <= start.elapsed()
                    {
                        arrivals.push(arrival);
                        bodies.push(request_body(config, w, n));
                        n += 1;
                        arrival += gap();
                    }
                    let results: Vec<Result<u16, String>> = match &mut client {
                        Some(client) => client.exchange(&bodies),
                        None => bodies
                            .iter()
                            .map(|body| send_request(&config.addr, body))
                            .collect(),
                    };
                    for (scheduled, result) in arrivals.iter().zip(results) {
                        match result {
                            Ok(200) => {
                                let latency = start.elapsed().saturating_sub(*scheduled);
                                histogram.observe(
                                    latency.as_nanos().min(u128::from(u64::MAX)) as u64,
                                );
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) | Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    let wall_s = start.elapsed().as_secs_f64();
    let delta = histogram.snapshot().delta(&before);
    let requests = ok.load(Ordering::Relaxed);
    Ok(LoadReport {
        requests,
        errors: failed.load(Ordering::Relaxed),
        keep_alive: config.keep_alive,
        io_model: config.io_model.clone(),
        achieved_rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        offered_rps: config.rate_hz,
        wall_s,
        p50_ns: delta.quantile(0.50),
        p90_ns: delta.quantile(0.90),
        p99_ns: delta.quantile(0.99),
        mean_ns: delta.mean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_deterministic_and_rotate() {
        let config = LoadConfig::default();
        assert_eq!(request_body(&config, 0, 0), request_body(&config, 0, 4));
        assert_ne!(request_body(&config, 0, 0), request_body(&config, 0, 1));
        assert_ne!(request_body(&config, 0, 0), request_body(&config, 1, 0));
        // Bodies are canonical JSON: parse → canonical is the identity.
        let body = request_body(&config, 2, 3);
        let doc = tn_core::json::parse(&body).expect("canonical body parses");
        assert_eq!(doc.to_canonical_string(), body);
    }

    #[test]
    fn report_json_carries_the_gated_keys() {
        let report = LoadReport {
            requests: 100,
            errors: 0,
            achieved_rps: 50.0,
            offered_rps: 50.0,
            wall_s: 2.0,
            p50_ns: 1e6,
            p90_ns: 2e6,
            p99_ns: 3e6,
            mean_ns: 1.2e6,
            keep_alive: true,
            io_model: "epoll".to_string(),
        };
        let doc = report.to_json(true);
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("fleet_load"));
        assert_eq!(doc.get("smoke").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("io_model").and_then(Json::as_str), Some("epoll"));
        assert_eq!(doc.get("keep_alive").and_then(Json::as_bool), Some(true));
        for key in [
            "requests",
            "errors",
            "offered_rps",
            "achieved_rps",
            "wall_s",
            "latency_p50_ns",
            "latency_p90_ns",
            "latency_p99_ns",
            "latency_mean_ns",
        ] {
            assert!(
                doc.get(key).and_then(Json::as_f64).is_some(),
                "missing numeric key {key}"
            );
        }
    }

    #[test]
    fn send_request_rejects_unreachable_address() {
        // Port 1 on loopback is essentially never listening; the error
        // path must surface as Err, not a panic.
        let err = send_request("127.0.0.1:1", "{}").unwrap_err();
        assert!(err.contains("connect"), "unexpected error: {err}");
    }
}
