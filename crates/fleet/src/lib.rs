//! # tn-fleet — fleet-scale risk service
//!
//! Turns the per-device Monte-Carlo risk pipeline into something a
//! datacenter operator can poll at fleet rate. Three pieces:
//!
//! * [`FleetRegistry`] — a deterministic in-memory store of fleet
//!   entries (device model, site, altitude, ¹⁰B shield areal density,
//!   thermal-field scaling, workload AVF) with JSONL snapshot
//!   load/save via `tn_core::json`.
//! * [`RiskSurface`] — precomputed interpolation tables over the
//!   (altitude × ¹⁰B areal density) plane, built once from the
//!   transport kernel, so steady-state FIT queries are bilinear table
//!   lookups. Rigidity, thermal scaling and AVF enter the FIT
//!   arithmetic linearly and are applied analytically at query time;
//!   out-of-grid configurations fall back to a direct Monte-Carlo run
//!   (counted in [`stats`]). Construction is parallelised over grid
//!   columns with fork(column) substreams, so the tables are
//!   byte-identical for any thread count.
//! * [`load`] — an in-tree open-loop load harness driving the server's
//!   `POST /v1/fleet` endpoint with deterministic Poisson arrivals and
//!   coordinated-omission-free latency measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod load;
pub mod registry;
pub mod stats;
pub mod surface;

pub use load::{LoadConfig, LoadReport};
pub use registry::{FleetEntry, FleetError, FleetRegistry};
pub use surface::{RiskAssessment, RiskSource, RiskSurface, SiteParams, SurfaceConfig};
