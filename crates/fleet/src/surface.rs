//! Precomputed risk surfaces: steady-state fleet FIT queries as
//! bilinear table lookups, with the Monte-Carlo kernel reserved for
//! out-of-grid configurations.
//!
//! ## Why a 2-D table serves a 4-D query space
//!
//! A fleet query varies over (altitude × ¹⁰B areal density ×
//! thermal-field scaling × AVF). Two of those axes are *exactly* linear
//! in the FIT arithmetic — the thermal scaling multiplies the thermal
//! flux and the AVF multiplies both FIT contributions — so they are
//! folded in analytically at query time with zero interpolation error.
//! The same holds for geomagnetic rigidity (`he × r`, `th × r^1.24`).
//! What is left to tabulate is the (altitude × ¹⁰B) plane:
//!
//! * the high-energy flux `Φ_he(alt) = Φ_NYC · exp(k·(alt−10))`,
//! * the thermal flux `Φ_th(alt, N) = Φ_NYC,th · exp(k·(alt−10))^1.24
//!   · T(N)`, where `T(N)` is the diffuse thermal transmission of a
//!   borated-polyethylene slab holding `N` ¹⁰B atoms/cm² — the one
//!   factor that needs the Monte-Carlo kernel.
//!
//! ## Grid layout and error bound
//!
//! The tables store *logarithms* of the fluxes on an
//! `alt_nodes × b10_nodes` grid (altitude linear-spaced, ¹⁰B areal
//! density log-spaced), and queries interpolate bilinearly in
//! `(altitude, N)` before exponentiating. In log space the altitude
//! dependence `ln Φ ∝ alt` is an exact straight line, so the altitude
//! axis contributes no interpolation error at all; on the ¹⁰B axis,
//! absorption-dominated attenuation makes `ln T` close to linear *in N*
//! within each log-spaced cell, leaving only the mild scattering-buildup
//! curvature plus Monte-Carlo noise — ≤ 1 % on the grid interior at the
//! default node counts and history budgets (pinned by the
//! `fleet_subsystem` integration test).
//!
//! ## Determinism
//!
//! Construction is parallelised over ¹⁰B grid columns with the same
//! fork(shard) substream discipline the transport kernel uses for its
//! history shards: column `j` derives its seed as
//! `Rng::seed_from_u64(seed).fork(j)`, each column runs a *serial*
//! transport internally, and results are written into their slot by
//! index. Tables are therefore byte-identical for any thread count.

use crate::stats;
use tn_core::transport::{SlabStack, Transport, TransportConfig, VarianceReduction};
use tn_devices::{Device, ErrorClass};
use tn_environment::location::THERMAL_ALTITUDE_EXPONENT;
use tn_environment::Location;
use tn_fit::DeviceFit;
use tn_physics::constants::THERMAL_ENERGY;
use tn_physics::units::{Fit, Flux, Length};
use tn_physics::Material;
use tn_rng::Rng;

/// Transmission floor: a shield this black contributes FIT ≈ 0 anyway,
/// and the clamp keeps `ln T` finite for the log-space tables.
const MIN_TRANSMISSION: f64 = 1e-12;

/// Grid geometry and statistics budget for one risk surface.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceConfig {
    /// Lowest altitude node, metres.
    pub alt_min_m: f64,
    /// Highest altitude node, metres.
    pub alt_max_m: f64,
    /// Altitude nodes (≥ 2).
    pub alt_nodes: usize,
    /// log₁₀ of the smallest nonzero ¹⁰B areal-density node (atoms/cm²).
    pub log10_b10_min: f64,
    /// log₁₀ of the largest ¹⁰B areal-density node.
    pub log10_b10_max: f64,
    /// ¹⁰B nodes (≥ 2), log-spaced between the two bounds.
    pub b10_nodes: usize,
    /// Monte-Carlo histories per ¹⁰B column.
    pub histories_per_node: u64,
    /// Master seed; column `j` forks substream `j`.
    pub seed: u64,
    /// Worker threads for construction (0 ⇒ serial). Tables are
    /// byte-identical for any value.
    pub threads: usize,
}

impl SurfaceConfig {
    /// The production grid: 33 altitude nodes over 0–4000 m × 17 ¹⁰B
    /// nodes over 10¹⁷–10²¹ atoms/cm², 32 Ki histories per column.
    pub fn full(seed: u64) -> Self {
        Self {
            alt_min_m: 0.0,
            alt_max_m: 4_000.0,
            alt_nodes: 33,
            log10_b10_min: 17.0,
            log10_b10_max: 21.0,
            b10_nodes: 17,
            histories_per_node: 32_768,
            seed,
            threads: tn_core::transport::default_threads(),
        }
    }

    /// A low-statistics grid for CI smoke runs and debug builds.
    pub fn quick(seed: u64) -> Self {
        Self {
            alt_nodes: 9,
            b10_nodes: 9,
            histories_per_node: 4_096,
            ..Self::full(seed)
        }
    }
}

/// Site-side query parameters (everything but the device).
///
/// Callers must pass values that already satisfy
/// [`crate::FleetEntry::validate`]-level constraints; in particular the
/// altitude must lie in the terrestrial `-430..=9000` m range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteParams {
    /// Site altitude, metres.
    pub altitude_m: f64,
    /// Geomagnetic rigidity factor (1.0 = NYC).
    pub rigidity_factor: f64,
    /// Shield ¹⁰B areal density, atoms/cm² (0 = unshielded).
    pub b10_areal_cm2: f64,
    /// Thermal-field scaling factor.
    pub thermal_scaling: f64,
    /// Workload AVF in `(0..=1]`.
    pub avf: f64,
}

impl SiteParams {
    /// The site parameters of a registry entry.
    pub fn from_entry(entry: &crate::FleetEntry) -> Self {
        Self {
            altitude_m: entry.altitude_m,
            rigidity_factor: entry.rigidity_factor,
            b10_areal_cm2: entry.b10_areal_cm2,
            thermal_scaling: entry.thermal_scaling,
            avf: entry.avf,
        }
    }
}

/// Which path produced an assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskSource {
    /// Served from the precomputed surface (no transport run).
    Surface,
    /// Out-of-grid configuration; a Monte-Carlo run was needed.
    MonteCarlo,
}

impl RiskSource {
    /// The label used in API responses.
    pub fn label(self) -> &'static str {
        match self {
            RiskSource::Surface => "surface",
            RiskSource::MonteCarlo => "mc",
        }
    }
}

/// One device × site risk result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskAssessment {
    /// Silent-data-corruption FIT (AVF applied).
    pub sdc: DeviceFit,
    /// Detected-unrecoverable-error FIT (AVF applied).
    pub due: DeviceFit,
    /// Which path produced the numbers.
    pub source: RiskSource,
}

/// A built risk surface: log-space flux tables over the
/// (altitude × ¹⁰B areal density) plane.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskSurface {
    config: SurfaceConfig,
    /// Altitude node coordinates, metres (len = alt_nodes).
    alt_m: Vec<f64>,
    /// ¹⁰B node coordinates, atoms/cm² (len = b10_nodes, log-spaced).
    b10_n: Vec<f64>,
    /// ln high-energy flux per altitude node (rigidity 1).
    ln_he: Vec<f64>,
    /// ln unshielded thermal flux per altitude node (rigidity 1).
    ln_th_base: Vec<f64>,
    /// ln shield transmission per ¹⁰B node (the Monte-Carlo factor).
    ln_t: Vec<f64>,
    /// The 2-D table: ln shielded thermal flux, alt-major
    /// (`[i * b10_nodes + j]`).
    ln_th: Vec<f64>,
}

/// ¹⁰B number density of the borated-polyethylene shield material,
/// atoms/cm³ — converts areal density to slab thickness.
fn b10_number_density() -> f64 {
    Material::borated_polyethylene()
        .constituents()
        .iter()
        .find(|c| c.nuclide.symbol == "B10")
        .expect("borated polyethylene contains B10")
        .density
        .value()
}

/// Diffuse thermal transmission of a borated-PE slab with ¹⁰B areal
/// density `n_b10` (atoms/cm²), via the variance-reduced weighted
/// kernel. Runs serially: parallelism lives one level up, across grid
/// columns.
fn shield_transmission(n_b10: f64, histories: u64, seed: u64) -> f64 {
    if n_b10 <= 0.0 {
        return 1.0;
    }
    let thickness_cm = n_b10 / b10_number_density();
    let stack = SlabStack::single(Material::borated_polyethylene(), Length(thickness_cm));
    let transport = Transport::with_config(stack, TransportConfig::serial());
    let tally =
        transport.run_diffuse_weighted(THERMAL_ENERGY, histories, seed, VarianceReduction::default());
    tally.transmitted_thermal_fraction().max(MIN_TRANSMISSION)
}

/// Linear interpolation weight of `x` inside `[lo, hi]`.
fn lerp(a: f64, b: f64, u: f64) -> f64 {
    a + (b - a) * u
}

/// Finds the cell `[nodes[i], nodes[i+1]]` containing `x` and the
/// fractional position inside it. `None` outside the node range.
fn bracket(nodes: &[f64], x: f64) -> Option<(usize, f64)> {
    let (first, last) = (*nodes.first()?, *nodes.last()?);
    if !(first..=last).contains(&x) {
        return None;
    }
    let i = match nodes.iter().position(|n| x <= *n) {
        Some(0) => 0,
        Some(i) => i - 1,
        None => return None,
    };
    let i = i.min(nodes.len() - 2);
    let (lo, hi) = (nodes[i], nodes[i + 1]);
    Some((i, (x - lo) / (hi - lo)))
}

impl RiskSurface {
    /// Builds the surface: one serial Monte-Carlo transmission run per
    /// ¹⁰B column (fork(j) substream), columns distributed over
    /// `config.threads` workers, results merged by index — byte-identical
    /// for any thread count. The analytic altitude factors fill the rest
    /// of the table.
    pub fn build(config: SurfaceConfig) -> Self {
        assert!(config.alt_nodes >= 2, "need at least 2 altitude nodes");
        assert!(config.b10_nodes >= 2, "need at least 2 b10 nodes");
        assert!(
            config.alt_max_m > config.alt_min_m,
            "altitude range must be non-degenerate"
        );
        assert!(
            config.log10_b10_max > config.log10_b10_min,
            "b10 range must be non-degenerate"
        );
        let _span = tn_obs::span("fleet.surface_build");
        let started = std::time::Instant::now();

        let alt_m: Vec<f64> = (0..config.alt_nodes)
            .map(|i| {
                lerp(
                    config.alt_min_m,
                    config.alt_max_m,
                    i as f64 / (config.alt_nodes - 1) as f64,
                )
            })
            .collect();
        let b10_n: Vec<f64> = (0..config.b10_nodes)
            .map(|j| {
                10f64.powf(lerp(
                    config.log10_b10_min,
                    config.log10_b10_max,
                    j as f64 / (config.b10_nodes - 1) as f64,
                ))
            })
            .collect();

        // The Monte-Carlo factor: one transmission per ¹⁰B column,
        // sharded over workers, written by index.
        let mut ln_t = vec![0.0f64; config.b10_nodes];
        let threads = config.threads.max(1).min(config.b10_nodes);
        let per_worker = ln_t.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, chunk) in ln_t.chunks_mut(per_worker).enumerate() {
                let b10_n = &b10_n;
                let config = &config;
                scope.spawn(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let j = w * per_worker + k;
                        let column_seed = Rng::seed_from_u64(config.seed).fork(j as u64).next_u64();
                        *slot = shield_transmission(
                            b10_n[j],
                            config.histories_per_node,
                            column_seed,
                        )
                        .ln();
                    }
                });
            }
        });

        // The analytic factors: exact per altitude node (rigidity 1).
        let mut ln_he = Vec::with_capacity(config.alt_nodes);
        let mut ln_th_base = Vec::with_capacity(config.alt_nodes);
        for &alt in &alt_m {
            let loc = Location::new("surface node", alt, 1.0);
            ln_he.push(loc.high_energy_flux().value().ln());
            ln_th_base.push(loc.base_thermal_flux().value().ln());
        }

        // The 2-D table is the outer sum of the two factors. Stored (not
        // recomputed per query) so lookups are genuine bilinear reads.
        let mut ln_th = Vec::with_capacity(config.alt_nodes * config.b10_nodes);
        for &base in &ln_th_base {
            for &t in &ln_t {
                ln_th.push(base + t);
            }
        }

        stats::record_build(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        Self {
            config,
            alt_m,
            b10_n,
            ln_he,
            ln_th_base,
            ln_t,
            ln_th,
        }
    }

    /// The configuration this surface was built from.
    pub fn config(&self) -> &SurfaceConfig {
        &self.config
    }

    /// Whether `(altitude, b10)` lies on the grid (zero shielding counts:
    /// the `[0, N₀)` segment interpolates against the exact `T(0) = 1`).
    pub fn covers(&self, altitude_m: f64, b10_areal_cm2: f64) -> bool {
        let alt_ok = (self.alt_m[0]..=*self.alt_m.last().expect("nodes")).contains(&altitude_m);
        let b10_ok =
            (0.0..=*self.b10_n.last().expect("nodes")).contains(&b10_areal_cm2);
        alt_ok && b10_ok
    }

    /// Table lookup: `(high-energy flux, thermal flux)` at rigidity 1 and
    /// thermal scaling 1. `None` when off-grid.
    fn fluxes_from_surface(&self, altitude_m: f64, b10: f64) -> Option<(f64, f64)> {
        let (i, u) = bracket(&self.alt_m, altitude_m)?;
        let he = lerp(self.ln_he[i], self.ln_he[i + 1], u).exp();
        let cols = self.config.b10_nodes;
        let th = if b10 < self.b10_n[0] {
            if b10 < 0.0 {
                return None;
            }
            // Sub-grid shielding: interpolate ln T linearly in N between
            // the exact T(0) = 1 and the first node — near-exact because
            // attenuation this thin is purely exponential.
            let ln_t = (b10 / self.b10_n[0]) * self.ln_t[0];
            lerp(self.ln_th_base[i], self.ln_th_base[i + 1], u) + ln_t
        } else {
            let (j, v) = bracket(&self.b10_n, b10)?;
            let row_lo = lerp(self.ln_th[i * cols + j], self.ln_th[i * cols + j + 1], v);
            let row_hi = lerp(
                self.ln_th[(i + 1) * cols + j],
                self.ln_th[(i + 1) * cols + j + 1],
                v,
            );
            lerp(row_lo, row_hi, u)
        }
        .exp();
        Some((he, th))
    }

    /// Direct evaluation: analytic altitude factors plus a dedicated
    /// Monte-Carlo transmission run at the exact ¹⁰B value — the
    /// fallback for off-grid configurations and the differential oracle
    /// the conformance tests compare the table against.
    pub fn fluxes_direct(&self, altitude_m: f64, b10: f64) -> (f64, f64) {
        let loc = Location::new("direct query", altitude_m, 1.0);
        let t = if b10 <= 0.0 {
            1.0
        } else {
            let seed = Rng::seed_from_u64(self.config.seed)
                .fork(b10.to_bits())
                .next_u64();
            shield_transmission(b10, self.config.histories_per_node, seed)
        };
        (
            loc.high_energy_flux().value(),
            loc.base_thermal_flux().value() * t,
        )
    }

    /// Assesses one device at a site: surface lookup when the grid
    /// covers the configuration, Monte-Carlo fallback otherwise. The
    /// linear axes (rigidity, thermal scaling, AVF) are folded in
    /// analytically either way.
    pub fn assess(&self, device: &Device, p: &SiteParams) -> RiskAssessment {
        let (he, th, source) = match self.fluxes_from_surface(p.altitude_m, p.b10_areal_cm2) {
            Some((he, th)) => {
                stats::surface_hit();
                (he, th, RiskSource::Surface)
            }
            None => {
                stats::mc_fallback();
                let (he, th) = self.fluxes_direct(p.altitude_m, p.b10_areal_cm2);
                (he, th, RiskSource::MonteCarlo)
            }
        };
        let he_flux = Flux(he * p.rigidity_factor);
        let th_flux = Flux(
            th * p.rigidity_factor.powf(THERMAL_ALTITUDE_EXPONENT) * p.thermal_scaling,
        );
        let fit_for = |class: ErrorClass| {
            let region = device.response().region(class);
            DeviceFit {
                high_energy: Fit(region.fast_saturated().fit_in(he_flux).value() * p.avf),
                thermal: Fit(
                    region
                        .b10_cross_section_at(THERMAL_ENERGY)
                        .fit_in(th_flux)
                        .value()
                        * p.avf,
                ),
            }
        };
        RiskAssessment {
            sdc: fit_for(ErrorClass::Sdc),
            due: fit_for(ErrorClass::Due),
            source,
        }
    }

    /// FNV-1a digest over the node coordinates and both log tables —
    /// byte-level identity check for the determinism tests.
    pub fn grid_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bits: u64| {
            for byte in bits.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for table in [&self.alt_m, &self.b10_n, &self.ln_he, &self.ln_th_base, &self.ln_t, &self.ln_th]
        {
            eat(table.len() as u64);
            for &v in table.iter() {
                eat(v.to_bits());
            }
        }
        hash
    }

    /// Serialises the surface for on-disk caching (`serve
    /// --surface-cache`). Every `f64` — node coordinates, log tables,
    /// and the float config fields — is stored as the 16-hex-digit bit
    /// pattern of its `to_bits()`, because a decimal rendering would
    /// round-trip approximately and break the byte-identity contract
    /// that [`RiskSurface::grid_digest`] verifies (and JSON numbers
    /// cannot carry a `u64` bit pattern exactly past 2⁵³). The digest
    /// itself rides along so [`RiskSurface::from_json`] can reject a
    /// corrupted or hand-edited file.
    pub fn to_json(&self) -> tn_core::json::Json {
        use tn_core::json::Json;
        let hex = |v: f64| Json::Str(format!("{:016x}", v.to_bits()));
        let hex_vec = |vs: &[f64]| Json::Array(vs.iter().map(|&v| hex(v)).collect());
        let config = Json::Object(vec![
            ("alt_min_m".into(), hex(self.config.alt_min_m)),
            ("alt_max_m".into(), hex(self.config.alt_max_m)),
            ("alt_nodes".into(), Json::Num(self.config.alt_nodes as f64)),
            ("log10_b10_min".into(), hex(self.config.log10_b10_min)),
            ("log10_b10_max".into(), hex(self.config.log10_b10_max)),
            ("b10_nodes".into(), Json::Num(self.config.b10_nodes as f64)),
            (
                "histories_per_node".into(),
                Json::Str(format!("{:016x}", self.config.histories_per_node)),
            ),
            ("seed".into(), Json::Str(format!("{:016x}", self.config.seed))),
            ("threads".into(), Json::Num(self.config.threads as f64)),
        ]);
        Json::Object(vec![
            ("config".into(), config),
            ("alt_m".into(), hex_vec(&self.alt_m)),
            ("b10_n".into(), hex_vec(&self.b10_n)),
            ("ln_he".into(), hex_vec(&self.ln_he)),
            ("ln_th_base".into(), hex_vec(&self.ln_th_base)),
            ("ln_t".into(), hex_vec(&self.ln_t)),
            ("ln_th".into(), hex_vec(&self.ln_th)),
            (
                "digest".into(),
                Json::Str(format!("{:016x}", self.grid_digest())),
            ),
        ])
    }

    /// Restores a surface serialised by [`RiskSurface::to_json`],
    /// verifying table dimensions against the config and the
    /// recomputed [`RiskSurface::grid_digest`] against the stored one.
    pub fn from_json(doc: &tn_core::json::Json) -> Result<Self, String> {
        use tn_core::json::Json;
        let hex_u64 = |v: &Json, what: &str| -> Result<u64, String> {
            let s = v.as_str().ok_or_else(|| format!("{what}: not a hex string"))?;
            u64::from_str_radix(s, 16).map_err(|_| format!("{what}: bad hex `{s}`"))
        };
        let field = |doc: &Json, key: &str| -> Result<Json, String> {
            doc.get(key)
                .cloned()
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let hex_f64 =
            |v: &Json, what: &str| -> Result<f64, String> { Ok(f64::from_bits(hex_u64(v, what)?)) };
        let usize_of = |v: &Json, what: &str| -> Result<usize, String> {
            v.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| format!("{what}: not an integer"))
        };
        let vec_of = |v: &Json, what: &str| -> Result<Vec<f64>, String> {
            v.as_array()
                .ok_or_else(|| format!("{what}: not an array"))?
                .iter()
                .map(|item| hex_f64(item, what))
                .collect()
        };

        let c = field(doc, "config")?;
        let config = SurfaceConfig {
            alt_min_m: hex_f64(&field(&c, "alt_min_m")?, "alt_min_m")?,
            alt_max_m: hex_f64(&field(&c, "alt_max_m")?, "alt_max_m")?,
            alt_nodes: usize_of(&field(&c, "alt_nodes")?, "alt_nodes")?,
            log10_b10_min: hex_f64(&field(&c, "log10_b10_min")?, "log10_b10_min")?,
            log10_b10_max: hex_f64(&field(&c, "log10_b10_max")?, "log10_b10_max")?,
            b10_nodes: usize_of(&field(&c, "b10_nodes")?, "b10_nodes")?,
            histories_per_node: hex_u64(&field(&c, "histories_per_node")?, "histories_per_node")?,
            seed: hex_u64(&field(&c, "seed")?, "seed")?,
            threads: usize_of(&field(&c, "threads")?, "threads")?,
        };
        let surface = Self {
            alt_m: vec_of(&field(doc, "alt_m")?, "alt_m")?,
            b10_n: vec_of(&field(doc, "b10_n")?, "b10_n")?,
            ln_he: vec_of(&field(doc, "ln_he")?, "ln_he")?,
            ln_th_base: vec_of(&field(doc, "ln_th_base")?, "ln_th_base")?,
            ln_t: vec_of(&field(doc, "ln_t")?, "ln_t")?,
            ln_th: vec_of(&field(doc, "ln_th")?, "ln_th")?,
            config,
        };
        let (alt, b10) = (surface.config.alt_nodes, surface.config.b10_nodes);
        if alt < 2 || b10 < 2 {
            return Err("config declares fewer than 2 nodes per axis".into());
        }
        for (name, len, want) in [
            ("alt_m", surface.alt_m.len(), alt),
            ("b10_n", surface.b10_n.len(), b10),
            ("ln_he", surface.ln_he.len(), alt),
            ("ln_th_base", surface.ln_th_base.len(), alt),
            ("ln_t", surface.ln_t.len(), b10),
            ("ln_th", surface.ln_th.len(), alt * b10),
        ] {
            if len != want {
                return Err(format!("table `{name}` has {len} entries, config wants {want}"));
            }
        }
        let stored = hex_u64(&field(doc, "digest")?, "digest")?;
        let actual = surface.grid_digest();
        if stored != actual {
            return Err(format!(
                "grid digest mismatch: stored {stored:016x}, tables hash to {actual:016x}"
            ));
        }
        Ok(surface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> SurfaceConfig {
        SurfaceConfig {
            alt_nodes: 3,
            b10_nodes: 3,
            histories_per_node: 1_024,
            ..SurfaceConfig::full(seed)
        }
    }

    #[test]
    fn bracket_finds_cells_and_rejects_outside() {
        let nodes = [0.0, 1.0, 4.0];
        assert_eq!(bracket(&nodes, 0.0), Some((0, 0.0)));
        let (i, u) = bracket(&nodes, 2.5).unwrap();
        assert_eq!(i, 1);
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(bracket(&nodes, 4.0), Some((1, 1.0)));
        assert_eq!(bracket(&nodes, -0.1), None);
        assert_eq!(bracket(&nodes, 4.1), None);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let surface = RiskSurface::build(tiny_config(17));
        let line = surface.to_json().to_canonical_string();
        let doc = tn_core::json::parse(&line).expect("serialised surface parses");
        let restored = RiskSurface::from_json(&doc).expect("restores");
        // Byte identity of the tables, verified the same way the
        // determinism tests do — and full struct equality on top.
        assert_eq!(restored.grid_digest(), surface.grid_digest());
        assert_eq!(restored, surface);
        // A restored surface answers queries identically.
        assert_eq!(
            restored.fluxes_from_surface(1_234.5, 3e18),
            surface.fluxes_from_surface(1_234.5, 3e18)
        );
    }

    #[test]
    fn from_json_rejects_corruption() {
        let surface = RiskSurface::build(tiny_config(23));
        let good = surface.to_json().to_canonical_string();
        // Flip one hex digit inside a table entry: the digest check
        // must catch it even though the document still parses.
        let target = format!("{:016x}", surface.ln_th[0].to_bits());
        let flipped: String = {
            let mut s = target.clone().into_bytes();
            s[0] = if s[0] == b'f' { b'e' } else { b'f' };
            String::from_utf8(s).unwrap()
        };
        let corrupted = good.replacen(&target, &flipped, 1);
        assert_ne!(corrupted, good, "corruption actually changed the text");
        let doc = tn_core::json::parse(&corrupted).unwrap();
        let err = RiskSurface::from_json(&doc).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");

        // Truncated tables are rejected by the dimension check.
        let doc = tn_core::json::parse(&good).unwrap();
        if let tn_core::json::Json::Object(fields) = &doc {
            let mut fields = fields.clone();
            for (k, v) in fields.iter_mut() {
                if k == "ln_he" {
                    if let tn_core::json::Json::Array(items) = v {
                        items.pop();
                    }
                }
            }
            let err = RiskSurface::from_json(&tn_core::json::Json::Object(fields)).unwrap_err();
            assert!(err.contains("ln_he"), "{err}");
        } else {
            panic!("surface serialises to an object");
        }
    }

    #[test]
    fn transmission_decreases_with_areal_density() {
        let surface = RiskSurface::build(tiny_config(11));
        assert!(surface.ln_t[0] > surface.ln_t[1]);
        assert!(surface.ln_t[1] > surface.ln_t[2]);
        // A thin 1e17 shield transmits nearly everything; a 1e21 one
        // attenuates heavily.
        assert!(surface.ln_t[0] > (0.9f64).ln());
        assert!(surface.ln_t[2] < (0.5f64).ln());
    }

    #[test]
    fn altitude_axis_is_exact_under_interpolation() {
        let surface = RiskSurface::build(tiny_config(5));
        // Mid-cell altitude, zero shielding: the table value must match
        // the analytic flux to floating-point noise, because ln(flux) is
        // linear in altitude.
        let alt = 1_234.5;
        let (he, th) = surface.fluxes_from_surface(alt, 0.0).unwrap();
        let loc = Location::new("check", alt, 1.0);
        assert!((he / loc.high_energy_flux().value() - 1.0).abs() < 1e-12);
        assert!((th / loc.base_thermal_flux().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_boundaries() {
        let surface = RiskSurface::build(tiny_config(3));
        assert!(surface.covers(0.0, 0.0));
        assert!(surface.covers(4_000.0, 1e21));
        assert!(!surface.covers(4_000.1, 0.0));
        assert!(!surface.covers(-1.0, 0.0));
        assert!(!surface.covers(100.0, 1.1e21));
        assert!(surface.fluxes_from_surface(100.0, 2e21).is_none());
    }

    #[test]
    fn assess_applies_the_linear_axes_exactly() {
        let surface = RiskSurface::build(tiny_config(9));
        let devices = tn_devices::all_compute_devices();
        let device = &devices[0];
        let base = SiteParams {
            altitude_m: 500.0,
            rigidity_factor: 1.0,
            b10_areal_cm2: 0.0,
            thermal_scaling: 1.0,
            avf: 1.0,
        };
        let reference = surface.assess(device, &base);
        assert_eq!(reference.source, RiskSource::Surface);

        // AVF scales both contributions of both classes linearly.
        let half = surface.assess(device, &SiteParams { avf: 0.5, ..base });
        assert!(
            (half.sdc.total().value() / reference.sdc.total().value() - 0.5).abs() < 1e-12
        );
        // Thermal scaling touches only the thermal contribution.
        let hot = surface.assess(
            device,
            &SiteParams {
                thermal_scaling: 2.0,
                ..base
            },
        );
        assert!((hot.sdc.thermal.value() / reference.sdc.thermal.value() - 2.0).abs() < 1e-12);
        assert!(
            (hot.sdc.high_energy.value() - reference.sdc.high_energy.value()).abs()
                < 1e-15
        );
        // Rigidity: he × r, th × r^1.24.
        let rigid = surface.assess(
            device,
            &SiteParams {
                rigidity_factor: 2.0,
                ..base
            },
        );
        assert!((rigid.sdc.high_energy.value() / reference.sdc.high_energy.value() - 2.0).abs() < 1e-12);
        assert!(
            (rigid.sdc.thermal.value() / reference.sdc.thermal.value()
                - 2f64.powf(THERMAL_ALTITUDE_EXPONENT))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn off_grid_queries_fall_back_to_monte_carlo() {
        let surface = RiskSurface::build(tiny_config(13));
        let devices = tn_devices::all_compute_devices();
        let p = SiteParams {
            altitude_m: 8_000.0, // above the grid, inside the flux model
            rigidity_factor: 1.0,
            b10_areal_cm2: 0.0,
            thermal_scaling: 1.0,
            avf: 1.0,
        };
        let fallbacks_before = stats::mc_fallbacks_total();
        let r = surface.assess(&devices[0], &p);
        assert_eq!(r.source, RiskSource::MonteCarlo);
        assert_eq!(stats::mc_fallbacks_total(), fallbacks_before + 1);
        assert!(r.sdc.total().value() > 0.0);
    }
}
