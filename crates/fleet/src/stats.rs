//! Process-wide fleet-service instrumentation, backed by the shared
//! [`tn_obs`] global registry.
//!
//! The split that matters operationally is *surface hits vs Monte-Carlo
//! fallbacks*: a healthy steady state serves almost every fleet query
//! from the precomputed risk surface (a bilinear table lookup), and only
//! out-of-grid configurations pay for a transport run. The counters land
//! in `tn_obs::global()`, so the server's `/metrics` endpoint and the
//! CLI `profile` report pick them up without extra wiring
//! (`tn_fleet_surface_hits_total`, `tn_fleet_mc_fallbacks_total`,
//! `tn_fleet_surface_build_seconds`).

use std::sync::{Arc, OnceLock};
use tn_obs::{Counter, CounterUnit, Histogram, Unit};

fn surface_hits() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        tn_obs::global().counter(
            "tn_fleet_surface_hits_total",
            &[],
            "Fleet risk queries served from the precomputed risk surface.",
            CounterUnit::Count,
        )
    })
}

fn mc_fallbacks() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        tn_obs::global().counter(
            "tn_fleet_mc_fallbacks_total",
            &[],
            "Fleet risk queries that fell back to a Monte-Carlo transport run.",
            CounterUnit::Count,
        )
    })
}

/// The process-wide surface-construction histogram
/// (`tn_fleet_surface_build_seconds`): one observation per
/// [`crate::RiskSurface::build`].
pub fn build_histogram() -> Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    Arc::clone(H.get_or_init(|| {
        tn_obs::global().histogram(
            "tn_fleet_surface_build_seconds",
            &[],
            "Wall-clock duration of risk-surface constructions.",
            Unit::Nanos,
        )
    }))
}

/// Counts one query served from the surface.
pub fn surface_hit() {
    surface_hits().inc();
}

/// Counts one query that ran the Monte-Carlo fallback.
pub fn mc_fallback() {
    mc_fallbacks().inc();
}

/// Queries served from the surface since process start.
pub fn surface_hits_total() -> u64 {
    surface_hits().get()
}

/// Queries that fell back to Monte Carlo since process start.
pub fn mc_fallbacks_total() -> u64 {
    mc_fallbacks().get()
}

/// Records one completed surface construction.
pub fn record_build(elapsed_nanos: u64) {
    build_histogram().observe(elapsed_nanos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let h0 = surface_hits_total();
        let m0 = mc_fallbacks_total();
        surface_hit();
        surface_hit();
        mc_fallback();
        assert_eq!(surface_hits_total() - h0, 2);
        assert_eq!(mc_fallbacks_total() - m0, 1);
    }

    #[test]
    fn build_histogram_records() {
        let before = build_histogram().snapshot().count();
        record_build(1_000_000);
        assert_eq!(build_histogram().snapshot().count(), before + 1);
    }
}
