//! The device-fleet registry: a deterministic in-memory store of fleet
//! entries with JSONL snapshot load/save.
//!
//! Each entry pairs a catalog device with the site parameters that fix
//! its FIT rate — altitude, geomagnetic rigidity, the ¹⁰B areal density
//! of any borated shield, a thermal-field scaling (surroundings,
//! weather, solar activity folded into one factor) and the workload's
//! architectural vulnerability factor. Entries are kept sorted by id, so
//! iteration order, JSONL snapshots and the streaming endpoint are all
//! deterministic. A generation counter bumps on every mutation; it is
//! part of the server's cache key, so cached fleet responses can never
//! outlive the registry state they were computed from.

use tn_core::json::{self, Json};
use tn_core::registry::find_device;

/// Why a fleet entry or snapshot was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// An entry had an empty or missing id.
    EmptyId,
    /// The device name did not resolve against the catalog.
    UnknownDevice(String),
    /// Altitude outside the terrestrial range the flux model covers.
    AltitudeOutOfRange(f64),
    /// A numeric field was non-finite or out of its allowed range.
    BadField {
        /// The JSON field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A JSONL snapshot line did not parse or was not an object.
    BadSnapshot(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyId => write!(f, "fleet entry needs a non-empty `id`"),
            FleetError::UnknownDevice(name) => write!(f, "unknown device `{name}`"),
            FleetError::AltitudeOutOfRange(alt) => write!(
                f,
                "`altitude_m` {alt} out of terrestrial range (-430..=9000)"
            ),
            FleetError::BadField { field, value } => {
                write!(f, "field `{field}` out of range: {value}")
            }
            FleetError::BadSnapshot(why) => write!(f, "bad fleet snapshot: {why}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One device deployment: a catalog device at a site, behind optional
/// boron shielding, running a workload with a given AVF.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEntry {
    /// Unique entry id (registry key).
    pub id: String,
    /// Canonical catalog device name.
    pub device: String,
    /// Free-form site label (not interpreted).
    pub site: String,
    /// Site altitude in metres (`-430..=9000`).
    pub altitude_m: f64,
    /// Geomagnetic rigidity factor (1.0 = NYC reference).
    pub rigidity_factor: f64,
    /// ¹⁰B areal density of the shield between field and device, in
    /// atoms/cm² (0 = unshielded).
    pub b10_areal_cm2: f64,
    /// Local thermal-field scaling: surroundings, weather and solar
    /// modulation folded into one multiplier on the thermal flux.
    pub thermal_scaling: f64,
    /// Workload architectural vulnerability factor in `(0..=1]`.
    pub avf: f64,
}

impl FleetEntry {
    /// An unshielded NYC-reference entry for a device; adjust fields
    /// from there.
    pub fn new(id: impl Into<String>, device: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            device: device.into(),
            site: String::new(),
            altitude_m: 10.0,
            rigidity_factor: 1.0,
            b10_areal_cm2: 0.0,
            thermal_scaling: 1.0,
            avf: 1.0,
        }
    }

    /// Validates the entry and canonicalises the device name against
    /// the catalog (case-insensitive match, catalog spelling wins).
    pub fn validate(mut self) -> Result<Self, FleetError> {
        if self.id.trim().is_empty() {
            return Err(FleetError::EmptyId);
        }
        let device =
            find_device(&self.device).ok_or_else(|| FleetError::UnknownDevice(self.device.clone()))?;
        self.device = device.name().to_string();
        if !(-430.0..=9_000.0).contains(&self.altitude_m) || !self.altitude_m.is_finite() {
            return Err(FleetError::AltitudeOutOfRange(self.altitude_m));
        }
        let positive = [
            ("rigidity_factor", self.rigidity_factor),
            ("thermal_scaling", self.thermal_scaling),
        ];
        for (field, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(FleetError::BadField { field, value });
            }
        }
        if !(self.b10_areal_cm2 >= 0.0 && self.b10_areal_cm2.is_finite()) {
            return Err(FleetError::BadField {
                field: "b10_areal_cm2",
                value: self.b10_areal_cm2,
            });
        }
        if !(self.avf > 0.0 && self.avf <= 1.0) {
            return Err(FleetError::BadField {
                field: "avf",
                value: self.avf,
            });
        }
        Ok(self)
    }

    /// The entry as a JSON object (alphabetical keys match the
    /// canonical serialisation, so snapshots are fixed points).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("altitude_m".into(), Json::Num(self.altitude_m)),
            ("avf".into(), Json::Num(self.avf)),
            ("b10_areal_cm2".into(), Json::Num(self.b10_areal_cm2)),
            ("device".into(), Json::Str(self.device.clone())),
            ("id".into(), Json::Str(self.id.clone())),
            ("rigidity_factor".into(), Json::Num(self.rigidity_factor)),
            ("site".into(), Json::Str(self.site.clone())),
            ("thermal_scaling".into(), Json::Num(self.thermal_scaling)),
        ])
    }

    /// Builds and validates an entry from a JSON object. Only `id` and
    /// `device` are required; the other fields default to an
    /// unshielded NYC-reference deployment at AVF 1.
    pub fn from_json(doc: &Json) -> Result<Self, FleetError> {
        if !matches!(doc, Json::Object(_)) {
            return Err(FleetError::BadSnapshot("entry is not an object".into()));
        }
        let str_field = |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_string);
        let num_field = |key: &'static str, default: f64| match doc.get(key) {
            None => Ok(default),
            Some(v) => v.as_f64().ok_or(FleetError::BadField {
                field: key,
                value: f64::NAN,
            }),
        };
        let entry = Self {
            id: str_field("id").ok_or(FleetError::EmptyId)?,
            device: str_field("device")
                .ok_or_else(|| FleetError::UnknownDevice("<missing>".into()))?,
            site: str_field("site").unwrap_or_default(),
            altitude_m: num_field("altitude_m", 10.0)?,
            rigidity_factor: num_field("rigidity_factor", 1.0)?,
            b10_areal_cm2: num_field("b10_areal_cm2", 0.0)?,
            thermal_scaling: num_field("thermal_scaling", 1.0)?,
            avf: num_field("avf", 1.0)?,
        };
        entry.validate()
    }
}

/// The deterministic in-memory fleet store.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRegistry {
    entries: Vec<FleetEntry>,
    generation: u64,
}

impl FleetRegistry {
    /// An empty registry at generation 0.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            generation: 0,
        }
    }

    /// Entries sorted by id.
    pub fn entries(&self) -> &[FleetEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the registry holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutation counter: bumps on every successful upsert/remove, and
    /// participates in server cache keys.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: &str) -> Option<&FleetEntry> {
        self.entries
            .binary_search_by(|e| e.id.as_str().cmp(id))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Validates and inserts an entry, replacing any entry with the
    /// same id. Keeps the store sorted by id.
    pub fn upsert(&mut self, entry: FleetEntry) -> Result<(), FleetError> {
        let entry = entry.validate()?;
        match self
            .entries
            .binary_search_by(|e| e.id.as_str().cmp(&entry.id))
        {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
        self.generation += 1;
        Ok(())
    }

    /// Removes an entry by id; returns whether it existed.
    pub fn remove(&mut self, id: &str) -> bool {
        match self.entries.binary_search_by(|e| e.id.as_str().cmp(id)) {
            Ok(i) => {
                self.entries.remove(i);
                self.generation += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Serialises the registry as a JSONL snapshot (one canonical line
    /// per entry, sorted by id).
    pub fn to_jsonl(&self) -> String {
        let docs: Vec<Json> = self.entries.iter().map(FleetEntry::to_json).collect();
        json::to_jsonl(&docs)
    }

    /// Loads a registry from a JSONL snapshot. Blank lines are skipped;
    /// entries are re-validated, and the loaded registry starts at
    /// generation 0 regardless of the writing registry's history.
    pub fn from_jsonl(text: &str) -> Result<Self, FleetError> {
        let docs =
            json::parse_jsonl(text).map_err(|e| FleetError::BadSnapshot(e.to_string()))?;
        let mut registry = Self::new();
        for doc in &docs {
            registry.upsert(FleetEntry::from_json(doc)?)?;
        }
        registry.generation = 0;
        Ok(registry)
    }

    /// A deterministic demo fleet: `count` entries cycling through the
    /// device catalog over a spread of altitudes, shields, thermal
    /// fields and AVFs. Same `(seed, count)` → identical registry.
    pub fn demo(seed: u64, count: usize) -> Self {
        const ALTITUDES: [f64; 5] = [10.0, 350.0, 1_609.0, 2_231.0, 3_094.0];
        const SHIELDS: [f64; 4] = [0.0, 1.0e18, 1.0e19, 1.0e20];
        const SITES: [&str; 5] = ["nyc-dc1", "denver-edge", "leadville-lab", "los-alamos-hpc", "sea-level-colo"];
        let devices = tn_devices::all_compute_devices();
        let mut rng = tn_rng::Rng::seed_from_u64(seed).fork(0xf1ee7);
        let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
        let mut registry = Self::new();
        for i in 0..count {
            let device = &devices[i % devices.len()];
            let entry = FleetEntry {
                id: format!("node-{i:04}"),
                device: device.name().to_string(),
                site: SITES[rng.gen_range(0..SITES.len())].to_string(),
                altitude_m: ALTITUDES[rng.gen_range(0..ALTITUDES.len())],
                rigidity_factor: 1.0,
                b10_areal_cm2: SHIELDS[rng.gen_range(0..SHIELDS.len())],
                thermal_scaling: round3(0.5 + 1.5 * rng.gen_f64()),
                avf: round3(0.3 + 0.7 * rng.gen_f64()),
            };
            registry
                .upsert(entry)
                .expect("demo entries are valid by construction");
        }
        registry.generation = 0;
        registry
    }
}

impl Default for FleetRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_keeps_entries_sorted_and_bumps_generation() {
        let mut r = FleetRegistry::new();
        r.upsert(FleetEntry::new("b", "NVIDIA K20")).unwrap();
        r.upsert(FleetEntry::new("a", "Intel Xeon Phi")).unwrap();
        assert_eq!(r.generation(), 2);
        let ids: Vec<&str> = r.entries().iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["a", "b"]);
        // Replacing by id does not grow the store.
        let mut replacement = FleetEntry::new("a", "NVIDIA K20");
        replacement.avf = 0.5;
        r.upsert(replacement).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().avf, 0.5);
        assert_eq!(r.generation(), 3);
        assert!(r.remove("a"));
        assert!(!r.remove("a"));
        assert_eq!(r.generation(), 4);
    }

    #[test]
    fn validation_rejects_bad_entries() {
        assert_eq!(
            FleetEntry::new("", "NVIDIA K20").validate().unwrap_err(),
            FleetError::EmptyId
        );
        assert!(matches!(
            FleetEntry::new("x", "PDP-11").validate().unwrap_err(),
            FleetError::UnknownDevice(_)
        ));
        let mut e = FleetEntry::new("x", "NVIDIA K20");
        e.altitude_m = 99_999.0;
        assert!(matches!(
            e.validate().unwrap_err(),
            FleetError::AltitudeOutOfRange(_)
        ));
        let mut e = FleetEntry::new("x", "NVIDIA K20");
        e.avf = 0.0;
        assert!(matches!(e.validate().unwrap_err(), FleetError::BadField { field: "avf", .. }));
        let mut e = FleetEntry::new("x", "NVIDIA K20");
        e.b10_areal_cm2 = -1.0;
        assert!(matches!(
            e.validate().unwrap_err(),
            FleetError::BadField { field: "b10_areal_cm2", .. }
        ));
    }

    #[test]
    fn device_names_are_canonicalised() {
        let e = FleetEntry::new("x", "nvidia k20").validate().unwrap();
        assert_eq!(e.device, "NVIDIA K20");
    }

    #[test]
    fn jsonl_snapshot_round_trips() {
        let r = FleetRegistry::demo(2020, 12);
        let text = r.to_jsonl();
        let back = FleetRegistry::from_jsonl(&text).unwrap();
        assert_eq!(back.entries(), r.entries());
        // Snapshot text is a fixed point of save -> load -> save.
        assert_eq!(back.to_jsonl(), text);
        // Blank lines are tolerated.
        let padded = format!("\n{text}\n\n");
        assert_eq!(FleetRegistry::from_jsonl(&padded).unwrap().entries(), r.entries());
    }

    #[test]
    fn snapshot_errors_are_reported() {
        assert!(matches!(
            FleetRegistry::from_jsonl("{nope").unwrap_err(),
            FleetError::BadSnapshot(_)
        ));
        assert!(matches!(
            FleetRegistry::from_jsonl("[1,2]").unwrap_err(),
            FleetError::BadSnapshot(_)
        ));
        let err = FleetRegistry::from_jsonl("{\"id\":\"a\",\"device\":\"PDP-11\"}").unwrap_err();
        assert!(matches!(err, FleetError::UnknownDevice(_)));
    }

    #[test]
    fn demo_fleet_is_deterministic() {
        let a = FleetRegistry::demo(7, 32);
        let b = FleetRegistry::demo(7, 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert_ne!(a, FleetRegistry::demo(8, 32));
        // Every demo entry validates and every catalog device appears.
        let devices: std::collections::BTreeSet<&str> =
            a.entries().iter().map(|e| e.device.as_str()).collect();
        assert_eq!(devices.len(), tn_devices::all_compute_devices().len());
    }
}
