//! Data-center thermal-flux study: reproduce the Tin-II water-box step
//! (Figure 6), derive the machine-room boosts from Monte-Carlo
//! moderation, and sweep surroundings/weather.
//!
//! ```text
//! cargo run --release --example datacenter_flux
//! ```

use tn_core::detector::WaterBoxExperiment;
use tn_core::environment::{DataCenterRoom, Environment, Location, Surroundings, Weather};

fn main() {
    let building = Environment::new(
        Location::los_alamos(),
        Weather::Sunny,
        Surroundings::concrete_floor(),
    );

    // --- Figure 6: the water-box experiment -----------------------------
    let experiment = WaterBoxExperiment::paper_configuration(building.clone());
    let outcome = experiment.run(20190420);
    println!("Tin-II water-box experiment (paper: +24% step)");
    println!("  derived thermal boost (MC):   {:+.1}%", 100.0 * outcome.derived_boost);
    println!("  observed counting-rate step:  {:+.1}%", 100.0 * outcome.step());
    println!(
        "  thermal rate before | after:  {:.2e} | {:.2e} n/cm^2/s",
        outcome.mean_before, outcome.mean_after
    );
    println!("\n  hourly bare-tube counts (one char per 6 h):");
    let max = outcome.series.iter().map(|s| s.bare).max().unwrap_or(1) as f64;
    let mut line = String::from("  ");
    for chunk in outcome.series.chunks(6) {
        let mean = chunk.iter().map(|s| s.bare as f64).sum::<f64>() / chunk.len() as f64;
        let level = (mean / max * 8.0).round() as usize;
        line.push(['.', ':', '-', '=', '+', '*', '#', '%', '@'][level.min(8)]);
    }
    println!("{line}  (water placed after day 4)");

    // --- Machine-room boost derivation ----------------------------------
    println!("\nMonte-Carlo-derived machine-room boosts (paper: +20% concrete, +24% water)");
    let air = DataCenterRoom::air_cooled();
    let wet = DataCenterRoom::liquid_cooled();
    println!("  concrete floor albedo:  {:+.1}%", 100.0 * air.derive_floor_boost(20_000, 7));
    println!("  cooling-water loops:    {:+.1}%", 100.0 * wet.derive_water_boost(20_000, 8));
    println!(
        "  combined room factor:   x{:.2}  (paper: x1.44)",
        wet.derive_thermal_factor(20_000, 9)
    );

    // --- Environment sweep ----------------------------------------------
    println!("\nThermal flux by environment (n/cm^2/h)");
    let base = Environment::new(Location::new_york(), Weather::Sunny, Surroundings::outdoors());
    let rows = [
        ("NYC outdoors, sunny", base.clone()),
        ("NYC outdoors, thunderstorm", base.with_weather(Weather::Thunderstorm)),
        ("NYC machine room", base.with_surroundings(Surroundings::hpc_machine_room())),
        ("Leadville machine room", Environment::leadville_machine_room()),
        (
            "Leadville machine room, storm",
            Environment::leadville_machine_room().with_weather(Weather::Thunderstorm),
        ),
    ];
    for (label, env) in rows {
        println!("  {:<32} {:>8.2}", label, env.thermal_flux().per_hour());
    }
}
