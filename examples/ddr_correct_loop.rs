//! The DDR study: run the read/write correct loop under the ROTAX
//! thermal beam for both DRAM generations, classify the error log the way
//! the experimenters did, replay it through SECDED ECC, and show why the
//! ChipIR fast-beam run had to be abandoned.
//!
//! ```text
//! cargo run --release --example ddr_correct_loop
//! ```

use tn_core::devices::ddr::{classify, CorrectLoop, DdrModule, FlipDirection};
use tn_core::devices::ecc::replay_with_ecc;
use tn_core::physics::units::{Flux, Seconds};

fn main() {
    let beam = Flux(2.72e6); // ROTAX thermal flux
    for module in [DdrModule::ddr3(), DdrModule::ddr4()] {
        let generation = module.generation();
        println!("=== {generation} ({} Gbit, {}V, {} MT/s) ===",
            module.capacity_gbit(), module.voltage(), module.transfer_rate());

        // DDR4 is ~10x less sensitive: give it 10x the beam time so both
        // logs carry comparable statistics, as a real campaign would.
        let hours = match generation {
            tn_core::devices::ddr::DdrGeneration::Ddr3 => 1.0,
            tn_core::devices::ddr::DdrGeneration::Ddr4 => 10.0,
        };
        let mut tester = CorrectLoop::new(module.clone(), 0xddf);
        let log = tester.run(beam, Seconds::from_hours(hours), Seconds(10.0));
        let classified = classify(&log);

        println!("  thermal fluence: {:.2e} n/cm^2 over {hours} h", log.fluence);
        println!(
            "  classified: {} transient, {} intermittent, {} permanent, {} SEFI",
            classified.transient, classified.intermittent, classified.permanent, classified.sefi
        );
        println!(
            "  permanent fraction: {:.0}%  (paper: <30% DDR3, >50% DDR4)",
            100.0 * classified.permanent_fraction()
        );
        println!(
            "  dominant direction {:?}: {:.0}%  (paper: >95%)",
            module.dominant_direction(),
            100.0 * classified.direction_fraction(module.dominant_direction())
        );
        let per_gbit = classified.total() as f64 / log.fluence / module.capacity_gbit();
        println!("  measured sigma/Gbit: {per_gbit:.2e} cm^2 (model: {:.2e})",
            module.thermal_sigma_per_gbit().value());

        let ecc = replay_with_ecc(&log);
        println!(
            "  SECDED replay: {} corrected, {} detected, {} uncorrected (coverage {:.0}%)",
            ecc.corrected,
            ecc.detected,
            ecc.uncorrected,
            100.0 * ecc.coverage()
        );

        let t_kill = module.time_to_permanent_faults(Flux(5.4e6), 50);
        println!(
            "  at ChipIR: ~{:.0} s of beam to 50 permanent faults -> campaign aborted\n",
            t_kill.value()
        );
    }

    // The flip-direction asymmetry table (Figure 4's left/right panels).
    println!("Per-direction thermal cross sections (cm^2/Gbit):");
    println!("{:<8} {:>12} {:>12}", "module", "1->0", "0->1");
    for module in [DdrModule::ddr3(), DdrModule::ddr4()] {
        println!(
            "{:<8} {:>12.2e} {:>12.2e}",
            module.generation().to_string(),
            module.thermal_sigma_in_direction(FlipDirection::OneToZero).value(),
            module.thermal_sigma_in_direction(FlipDirection::ZeroToOne).value()
        );
    }
}
