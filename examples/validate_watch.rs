//! Validates a `WATCH_report.json` artifact written by
//! `thermal-neutrons watch --json --out`: parses it with the in-tree
//! JSON parser and checks the shape and the paper-scenario outcome the
//! CI gate relies on.
//!
//! ```text
//! cargo run --example validate_watch -- WATCH_report.json
//! ```
//!
//! Exits non-zero (with a message on stderr) on malformed JSON, any
//! missing field, a malformed alert, or a report that does not record
//! the water-pan step: exactly one `step_up` whose refined magnitude is
//! within ±0.05 of the Monte-Carlo-derived boost.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

/// Absolute tolerance on `magnitude` against `derived_boost`, matching
/// the CLI's own pass/fail gate.
const MAGNITUDE_TOL: f64 = 0.05;

fn finite(doc: &json::Json, key: &str) -> Result<f64, String> {
    let value = doc
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    if !value.is_finite() {
        return Err(format!("field {key:?} is not finite: {value}"));
    }
    Ok(value)
}

fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let scenario = doc
        .get("scenario")
        .and_then(|v| v.as_str())
        .ok_or("missing string field \"scenario\"")?;
    doc.get("seed")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"seed\"")?;
    let samples = doc
        .get("samples")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"samples\"")?;
    let pre_samples = doc
        .get("pre_samples")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"pre_samples\"")?;
    if samples == 0 || pre_samples >= samples {
        return Err(format!(
            "inconsistent sample counts: pre_samples={pre_samples}, samples={samples}"
        ));
    }
    let derived_boost = finite(&doc, "derived_boost")?;
    let baseline_rate = finite(&doc, "baseline_rate")?;
    if derived_boost <= 0.0 || baseline_rate <= 0.0 {
        return Err(format!(
            "non-positive derived_boost={derived_boost} or baseline_rate={baseline_rate}"
        ));
    }
    let magnitude = finite(&doc, "magnitude")?;
    let delay = doc
        .get("detection_delay")
        .ok_or("missing field \"detection_delay\"")?;
    if !delay.is_null() && delay.as_u64().is_none() {
        return Err("field \"detection_delay\" is neither null nor an integer".into());
    }

    let alerts = doc
        .get("alerts")
        .and_then(|v| v.as_array())
        .ok_or("missing array field \"alerts\"")?;
    for (i, alert) in alerts.iter().enumerate() {
        let kind = alert
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("alert[{i}]: missing string field \"kind\""))?;
        if !["step_up", "step_down", "drift"].contains(&kind) {
            return Err(format!("alert[{i}]: unknown kind {kind:?}"));
        }
        let onset = alert
            .get("onset_index")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("alert[{i}]: missing integer field \"onset_index\""))?;
        let detected = alert
            .get("detected_index")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("alert[{i}]: missing integer field \"detected_index\""))?;
        if detected < onset {
            return Err(format!(
                "alert[{i}]: detected_index {detected} precedes onset_index {onset}"
            ));
        }
        for key in ["baseline_rate", "observed_rate", "magnitude"] {
            finite(alert, key).map_err(|e| format!("alert[{i}]: {e}"))?;
        }
    }

    // The paper-scenario gate, mirroring `WatchReport::detects_paper_step`.
    if scenario == "water_pan" {
        if alerts.len() != 1 {
            return Err(format!("expected exactly one alert, got {}", alerts.len()));
        }
        let alert = &alerts[0];
        if alert.get("kind").and_then(|v| v.as_str()) != Some("step_up") {
            return Err("the single alert is not a step_up".into());
        }
        let onset = alert.get("onset_index").and_then(|v| v.as_u64()).unwrap();
        if onset < pre_samples {
            return Err(format!(
                "step_up onset {onset} precedes the change point at {pre_samples}"
            ));
        }
        if delay.is_null() {
            return Err("water_pan report without a detection_delay".into());
        }
        let error = (magnitude - derived_boost).abs();
        if error > MAGNITUDE_TOL {
            return Err(format!(
                "refined magnitude {magnitude:.4} misses the derived boost \
                 {derived_boost:.4} by {error:.4} (tol {MAGNITUDE_TOL})"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "WATCH_report.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_watch: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("validate_watch: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_watch: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
