//! Operating a supercomputer under the thermal-neutron threat: fleet FIT
//! projections for the Top-10 machines, weather-aware checkpoint
//! planning, a beam shift with dosimetry (including the DDR abort at
//! ChipIR), and annealing a damaged module back to health.
//!
//! ```text
//! cargo run --release --example hpc_operations
//! ```

use tn_core::beamline::{BeamShift, DdrRunEnd, Facility};
use tn_core::devices::ddr::{CorrectLoop, DdrModule};
use tn_core::environment::{Environment, Location, Surroundings, Weather};
use tn_core::fit::hpc::{ranked_by_thermal_fit, TOP10_2019};
use tn_core::fit::CheckpointPlan;
use tn_core::physics::units::{Flux, Seconds};
use tn_core::{Pipeline, PipelineConfig};

fn main() {
    // --- Fleet memory FIT, Top-10 2019 ----------------------------------
    println!("Top-10 supercomputers, projected DDR thermal FIT:");
    for (rank, (name, fit)) in ranked_by_thermal_fit().iter().take(5).enumerate() {
        println!("  {}. {:<22} {:.2e} FIT", rank + 1, name, fit.value());
    }
    let trinity = &TOP10_2019[6];
    println!(
        "  Trinity expects {:.1} thermal memory errors/day (rainy: {:.1})",
        trinity.memory_errors_per_day(),
        trinity.memory_errors_per_day() * 2.0
    );

    // --- Checkpoint planning vs weather ----------------------------------
    let report = Pipeline::new(PipelineConfig::default()).seed(2020).run();
    let apu = report.device("AMD APU (CPU+GPU)").unwrap();
    println!("\nCheckpoint intervals for a 4,000-node APU fleet at Los Alamos:");
    for weather in [Weather::Sunny, Weather::Thunderstorm] {
        let env = Environment::new(
            Location::los_alamos(),
            weather,
            Surroundings::hpc_machine_room(),
        );
        let plan = CheckpointPlan::new(apu.due_fit(&env).total() * 4_000.0, Seconds(180.0));
        println!(
            "  {:<13} MTBF {:>7.1} h -> checkpoint every {:>5.1} min ({:.1}% overhead)",
            weather.to_string(),
            plan.mtbf().as_hours(),
            plan.young_interval().value() / 60.0,
            100.0 * plan.overhead_at(plan.young_interval())
        );
    }

    // --- A beam shift with dosimetry -------------------------------------
    println!("\nA ChipIR shift with the DDR abort rule:");
    let mut shift = BeamShift::new(Facility::chipir(), 7);
    match shift.run_ddr(DdrModule::ddr3(), Seconds::from_hours(2.0), 1) {
        DdrRunEnd::Aborted {
            after,
            permanent_faults,
        } => println!(
            "  DDR3 run aborted after {after:.0} s with {permanent_faults} permanent faults \
             (the paper's experience)"
        ),
        DdrRunEnd::Completed(_) => println!("  DDR3 unexpectedly survived"),
    }
    let mut rotax_shift = BeamShift::new(Facility::rotax(), 8);
    if let DdrRunEnd::Completed(classified) =
        rotax_shift.run_ddr(DdrModule::ddr3(), Seconds::from_hours(1.0), 2)
    {
        println!(
            "  at ROTAX the same module collects clean statistics: {} errors classified",
            classified.total()
        );
    }
    println!(
        "  dosimetry: {:.2e} n/cm2 over {:.0} s of beam",
        rotax_shift.dose_log().total_fluence(),
        rotax_shift.dose_log().total_seconds()
    );

    // --- Annealing the damaged module -------------------------------------
    println!("\nAnnealing repairs displacement damage:");
    let mut tester = CorrectLoop::new(DdrModule::ddr3(), 3);
    let _ = tester.run(Flux(2.72e6), Seconds(4000.0), Seconds(10.0));
    println!("  stuck cells after irradiation: {}", tester.stuck_count());
    tester.anneal();
    println!("  stuck cells after bake:        {}", tester.stuck_count());
}
