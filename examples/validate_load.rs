//! Validates a `BENCH_fleet.json` artifact written by the fleet load
//! harness (`thermal-neutrons load`): parses it with the in-tree JSON
//! parser and checks the keys and invariants the CI gate relies on.
//!
//! ```text
//! cargo run --example validate_load -- target/tn-bench/BENCH_fleet.json
//! cargo run --example validate_load -- KEEPALIVE.json CLOSE_BASELINE.json
//! ```
//!
//! Defaults to `target/tn-bench/BENCH_fleet.json` when no path is
//! given. With a second path, the first artifact must be a keep-alive
//! run and the second a close-per-request baseline, and the keep-alive
//! achieved rate must be at least [`KEEP_ALIVE_SPEEDUP_FLOOR`]× the
//! baseline's — the CI ratio gate for connection reuse.
//!
//! Exits non-zero (with a message on stderr) on any missing key,
//! non-numeric value, malformed JSON, a latency distribution that
//! violates the p50 ≤ p90 ≤ p99 ordering, or a gated throughput floor,
//! so `scripts/ci.sh` can gate on it directly after the smoke runs.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;
use thermal_neutrons::core_api::json::Json;

/// Strictly positive numeric fields every artifact must carry.
const REQUIRED_POSITIVE: &[&str] = &[
    "requests",
    "offered_rps",
    "achieved_rps",
    "wall_s",
    "latency_p50_ns",
    "latency_p90_ns",
    "latency_p99_ns",
    "latency_mean_ns",
];

/// The p99 latency gate for non-saturating smoke runs, nanoseconds.
/// Smoke runs at an offered rate the server keeps up with drive a
/// lightly-loaded in-process server answering from the risk surface
/// and the response cache; even on a busy CI box a cached bulk
/// assessment should clear in well under this bound. A p99 past it
/// means the surface path regressed to Monte-Carlo or the server is
/// queueing pathologically. Deliberately-saturating smoke runs (the
/// keep-alive ratio gate) are recognised by achieved ≪ offered and
/// exempted: there the backlog tail is the point of the measurement.
const SMOKE_P99_BOUND_NS: f64 = 5e9;

/// Minimum achieved-rate ratio of a keep-alive run over its
/// close-per-request baseline (same box, same saturating offered rate).
const KEEP_ALIVE_SPEEDUP_FLOOR: f64 = 3.0;

/// Throughput floor for a full (non-smoke) keep-alive run against the
/// epoll server: ≥ 10× the 7.35k req/s close-per-request single-core
/// baseline recorded by the previous bench round.
const KEEP_ALIVE_EPOLL_FLOOR_RPS: f64 = 73_500.0;

struct Artifact {
    keep_alive: bool,
    io_model: String,
    achieved_rps: f64,
}

fn validate(text: &str) -> Result<Artifact, String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing string field \"name\"")?;
    if name != "fleet_load" {
        return Err(format!("unexpected bench name {name:?}"));
    }
    let smoke = doc
        .get("smoke")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"smoke\"")?;
    let keep_alive = doc
        .get("keep_alive")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"keep_alive\"")?;
    let io_model = doc
        .get("io_model")
        .and_then(|v| v.as_str())
        .ok_or("missing string field \"io_model\"")?
        .to_string();
    if io_model != "threads" && io_model != "epoll" {
        return Err(format!("unknown io_model {io_model:?}"));
    }
    let number = |key: &str| -> Result<f64, String> {
        let value = doc
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        if !value.is_finite() {
            return Err(format!("field {key:?} is not finite: {value}"));
        }
        Ok(value)
    };
    for key in REQUIRED_POSITIVE {
        let value = number(key)?;
        if value <= 0.0 {
            return Err(format!("field {key:?} is not a positive number: {value}"));
        }
    }
    let errors = number("errors")?;
    if errors < 0.0 {
        return Err(format!("field \"errors\" is negative: {errors}"));
    }

    // The quantiles must be ordered; a crossed pair means the histogram
    // snapshot-delta logic (or the report assembly) broke.
    let (p50, p90, p99) = (
        number("latency_p50_ns")?,
        number("latency_p90_ns")?,
        number("latency_p99_ns")?,
    );
    if !(p50 <= p90 && p90 <= p99) {
        return Err(format!(
            "latency quantiles are not ordered: p50 {p50} / p90 {p90} / p99 {p99}"
        ));
    }

    // Errors dominating successes means the run measured failures, not
    // the service.
    let requests = number("requests")?;
    if errors > requests {
        return Err(format!(
            "more errors ({errors}) than completed requests ({requests})"
        ));
    }

    let achieved = number("achieved_rps")?;
    let offered = number("offered_rps")?;
    let saturating = achieved < 0.9 * offered;
    if smoke && !saturating && p99 > SMOKE_P99_BOUND_NS {
        return Err(format!(
            "smoke p99 latency {:.1}ms exceeds the {:.0}ms gate",
            p99 / 1e6,
            SMOKE_P99_BOUND_NS / 1e6
        ));
    }

    if !smoke && keep_alive && io_model == "epoll" && achieved < KEEP_ALIVE_EPOLL_FLOOR_RPS {
        return Err(format!(
            "keep-alive epoll run achieved {achieved:.0} req/s, below the \
             {KEEP_ALIVE_EPOLL_FLOOR_RPS:.0} req/s floor (10x the close-per-request baseline)"
        ));
    }

    Ok(Artifact {
        keep_alive,
        io_model,
        achieved_rps: achieved,
    })
}

/// The ratio gate: `keep` must be a keep-alive artifact, `base` a
/// close-per-request artifact, and reuse must pay for itself.
fn validate_ratio(keep: &Artifact, base: &Artifact) -> Result<(), String> {
    if !keep.keep_alive {
        return Err("first artifact is not a keep-alive run".to_string());
    }
    if base.keep_alive {
        return Err("baseline artifact is not a close-per-request run".to_string());
    }
    if keep.io_model != base.io_model {
        return Err(format!(
            "io models differ: keep-alive ran {} but baseline ran {}",
            keep.io_model, base.io_model
        ));
    }
    let ratio = keep.achieved_rps / base.achieved_rps;
    if ratio < KEEP_ALIVE_SPEEDUP_FLOOR {
        return Err(format!(
            "keep-alive achieved only {:.0} req/s vs the close baseline's {:.0} \
             ({ratio:.2}x, floor {KEEP_ALIVE_SPEEDUP_FLOOR}x)",
            keep.achieved_rps, base.achieved_rps
        ));
    }
    println!(
        "validate_load: keep-alive speedup {ratio:.1}x over close-per-request \
         ({:.0} vs {:.0} req/s, io={})",
        keep.achieved_rps, base.achieved_rps, keep.io_model
    );
    Ok(())
}

fn load(path: &str) -> Result<Artifact, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .unwrap_or_else(|| "target/tn-bench/BENCH_fleet.json".into());
    let baseline_path = args.next();
    let result = load(&path).and_then(|artifact| {
        if let Some(base_path) = baseline_path {
            let base = load(&base_path)?;
            validate_ratio(&artifact, &base)?;
        }
        Ok(())
    });
    match result {
        Ok(()) => {
            println!("validate_load: {path} ok");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("validate_load: {message}");
            ExitCode::FAILURE
        }
    }
}
