//! Validates a `BENCH_fleet.json` artifact written by the fleet load
//! harness (`thermal-neutrons load`): parses it with the in-tree JSON
//! parser and checks the keys and invariants the CI gate relies on.
//!
//! ```text
//! cargo run --example validate_load -- target/tn-bench/BENCH_fleet.json
//! ```
//!
//! Defaults to `target/tn-bench/BENCH_fleet.json` when no path is
//! given. Exits non-zero (with a message on stderr) on any missing key,
//! non-numeric value, malformed JSON, or a latency distribution that
//! violates the p50 ≤ p90 ≤ p99 ordering, so `scripts/ci.sh` can gate
//! on it directly after the smoke load run.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

/// Strictly positive numeric fields every artifact must carry.
const REQUIRED_POSITIVE: &[&str] = &[
    "requests",
    "offered_rps",
    "achieved_rps",
    "wall_s",
    "latency_p50_ns",
    "latency_p90_ns",
    "latency_p99_ns",
    "latency_mean_ns",
];

/// The p99 latency gate for smoke runs, nanoseconds. Smoke runs drive
/// a lightly-loaded in-process server answering from the risk surface
/// and the response cache; even on a busy CI box a cached bulk
/// assessment should clear in well under this bound. A p99 past it
/// means the surface path regressed to Monte-Carlo or the server is
/// queueing pathologically.
const SMOKE_P99_BOUND_NS: f64 = 5e9;

fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing string field \"name\"")?;
    if name != "fleet_load" {
        return Err(format!("unexpected bench name {name:?}"));
    }
    let smoke = doc
        .get("smoke")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"smoke\"")?;
    let number = |key: &str| -> Result<f64, String> {
        let value = doc
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        if !value.is_finite() {
            return Err(format!("field {key:?} is not finite: {value}"));
        }
        Ok(value)
    };
    for key in REQUIRED_POSITIVE {
        let value = number(key)?;
        if value <= 0.0 {
            return Err(format!("field {key:?} is not a positive number: {value}"));
        }
    }
    let errors = number("errors")?;
    if errors < 0.0 {
        return Err(format!("field \"errors\" is negative: {errors}"));
    }

    // The quantiles must be ordered; a crossed pair means the histogram
    // snapshot-delta logic (or the report assembly) broke.
    let (p50, p90, p99) = (
        number("latency_p50_ns")?,
        number("latency_p90_ns")?,
        number("latency_p99_ns")?,
    );
    if !(p50 <= p90 && p90 <= p99) {
        return Err(format!(
            "latency quantiles are not ordered: p50 {p50} / p90 {p90} / p99 {p99}"
        ));
    }

    // Errors dominating successes means the run measured failures, not
    // the service.
    let requests = number("requests")?;
    if errors > requests {
        return Err(format!(
            "more errors ({errors}) than completed requests ({requests})"
        ));
    }

    if smoke && p99 > SMOKE_P99_BOUND_NS {
        return Err(format!(
            "smoke p99 latency {:.1}ms exceeds the {:.0}ms gate",
            p99 / 1e6,
            SMOKE_P99_BOUND_NS / 1e6
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tn-bench/BENCH_fleet.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_load: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("validate_load: {path} ok");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("validate_load: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}
