//! A single beam shift, end to end: align boards at ChipIR with distance
//! derating, test one device at a time at ROTAX, and report per-code
//! cross sections with their 95% Poisson confidence intervals — the raw
//! material of the paper's Figures 1 and 5.
//!
//! ```text
//! cargo run --release --example beam_campaign
//! ```

use tn_core::beamline::{BeamSetup, BoardSlot, Campaign, Facility};
use tn_core::devices::catalog;
use tn_core::fault_injection::InjectionCampaign;
use tn_core::physics::units::Seconds;
use tn_core::workloads::{
    ced::CannyEdge, sc::StreamCompaction, Workload,
};

fn main() {
    // --- ChipIR shift: several boards share the beam ---------------------
    let apu = catalog::amd_apu_hybrid();
    let fpga = catalog::xilinx_zynq();
    let mut setup = BeamSetup::chipir_style(vec![BoardSlot {
        label: apu.name().to_string(),
        distance_m: 1.0,
    }]);
    setup
        .add_board(BoardSlot {
            label: fpga.name().to_string(),
            distance_m: 2.0,
        })
        .expect("ChipIR hosts multiple boards");
    println!("ChipIR setup: {} boards aligned with the beam", setup.slots().len());
    for (i, slot) in setup.slots().iter().enumerate() {
        println!("  {} at {} m (derating {:.2})", slot.label, slot.distance_m, setup.derating(i));
    }

    // --- ROTAX: the device stops the beam, one board only ----------------
    let mut rotax_setup = BeamSetup::rotax_style(BoardSlot {
        label: apu.name().to_string(),
        distance_m: 1.0,
    });
    let rejected = rotax_setup.add_board(BoardSlot {
        label: fpga.name().to_string(),
        distance_m: 2.0,
    });
    println!(
        "\nROTAX setup: single board only — adding a second was {}",
        if rejected.is_err() { "rejected" } else { "accepted?!" }
    );

    // --- Campaigns over the heterogeneous codes --------------------------
    let beam_time = Seconds::from_hours(12.0);
    let codes: Vec<(Box<dyn Workload>, u64)> = vec![
        (Box::new(StreamCompaction::new(256, 1)), 11),
        (Box::new(CannyEdge::new(48, 48, 2)), 12),
    ];
    println!("\n{:<6} {:>24} {:>24} {:>8}", "code", "ChipIR sigma_SDC [CI]", "ROTAX sigma_SDC [CI]", "ratio");
    for (workload, seed) in codes {
        let profile = InjectionCampaign::new(&*workload).runs(300).seed(seed).execute();
        let chipir = Campaign::new(Facility::chipir(), &apu, workload.name(), profile)
            .beam_time(beam_time)
            .derating(1.0)
            .seed(seed)
            .run();
        let rotax = Campaign::new(Facility::rotax(), &apu, workload.name(), profile)
            .beam_time(beam_time)
            .seed(seed ^ 0xff)
            .run();
        println!(
            "{:<6} {:>10.2e} [{:.1e},{:.1e}] {:>10.2e} [{:.1e},{:.1e}] {:>8.2}",
            workload.name(),
            chipir.sdc.sigma,
            chipir.sdc.ci.0,
            chipir.sdc.ci.1,
            rotax.sdc.sigma,
            rotax.sdc.ci.0,
            rotax.sdc.ci.1,
            chipir.sdc.sigma / rotax.sdc.sigma
        );
    }
}
