//! Validates a `VERIFY_report.json` artifact written by
//! `thermal-neutrons verify`: parses it with the in-tree JSON parser and
//! checks the shape the CI gate relies on.
//!
//! ```text
//! cargo run --example validate_verify -- VERIFY_report.json
//! ```
//!
//! Exits non-zero (with a message on stderr) on malformed JSON, any
//! missing field, an empty check list, a missing self-test suite, or a
//! report whose top-level `passed` disagrees with its per-check flags —
//! so `scripts/ci.sh` can gate on it directly after `verify --quick`.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

/// Suites every report must contain at least one check from.
const REQUIRED_SUITES: &[&str] = &["stat", "oracle", "golden", "watch", "scenario", "selftest"];

fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    doc.get("seed")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"seed\"")?;
    doc.get("quick")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"quick\"")?;
    let passed = doc
        .get("passed")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"passed\"")?;
    let checks = doc
        .get("checks")
        .and_then(|v| v.as_array())
        .ok_or("missing array field \"checks\"")?;
    if checks.is_empty() {
        return Err("empty \"checks\" array".into());
    }

    let mut all_passed = true;
    let mut suites_seen: Vec<&str> = Vec::new();
    for (i, check) in checks.iter().enumerate() {
        let suite = check
            .get("suite")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("check[{i}]: missing string field \"suite\""))?;
        if !suites_seen.contains(&suite) {
            suites_seen.push(suite);
        }
        check
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("check[{i}]: missing string field \"name\""))?;
        let check_passed = check
            .get("passed")
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("check[{i}]: missing bool field \"passed\""))?;
        all_passed &= check_passed;
        for key in ["statistic", "threshold"] {
            let value = check
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("check[{i}]: missing numeric field {key:?}"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "check[{i}]: field {key:?} is not a finite non-negative number: {value}"
                ));
            }
        }
        check
            .get("cases")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("check[{i}]: missing integer field \"cases\""))?;
        check
            .get("detail")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("check[{i}]: missing string field \"detail\""))?;
    }

    if passed != all_passed {
        return Err(format!(
            "top-level passed={passed} disagrees with per-check flags (all passed: {all_passed})"
        ));
    }
    for suite in REQUIRED_SUITES {
        if !suites_seen.contains(suite) {
            return Err(format!("no checks from required suite {suite:?}"));
        }
    }
    if !passed {
        return Err("report records failing checks".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "VERIFY_report.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_verify: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("validate_verify: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_verify: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
