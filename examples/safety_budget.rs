//! ISO 26262-style safety budgeting for an autonomous-vehicle GPU: run
//! the beam campaigns, build a commuter mission profile, and see how much
//! of an ASIL random-hardware-failure budget thermal neutrons silently
//! consume — the paper's automotive motivation as an engineering check.
//!
//! ```text
//! cargo run --release --example safety_budget
//! ```

use tn_core::beamline::{Campaign, Facility};
use tn_core::devices::catalog;
use tn_core::environment::{Location, RoadSurface, Vehicle, Weather};
use tn_core::fault_injection::InjectionCampaign;
use tn_core::fit::mission::{MissionLeg, MissionProfile, SafetyBudget};
use tn_core::physics::units::{CrossSection, Seconds};
use tn_core::workloads::yolo::Yolo;

fn main() {
    // Beam-measure the detection GPU.
    let gpu = catalog::nvidia_titanx();
    let profile = InjectionCampaign::new(Yolo::new(42)).runs(400).seed(1).execute();
    let beam = Seconds::from_hours(30.0);
    let he = Campaign::new(Facility::chipir(), &gpu, "YOLO", profile)
        .beam_time(beam)
        .seed(2)
        .run();
    let th = Campaign::new(Facility::rotax(), &gpu, "YOLO", profile)
        .beam_time(beam)
        .seed(3)
        .run();
    let (sigma_he, sigma_th) = (CrossSection(he.due.sigma), CrossSection(th.due.sigma));
    println!(
        "{} DUE cross sections: HE {:.2e} cm^2, thermal {:.2e} cm^2",
        gpu.name(),
        sigma_he.value(),
        sigma_th.value()
    );

    // A Denver commuter's mission mix.
    let car = Vehicle::new(RoadSurface::Concrete, 50.0, 2);
    let denver = || Location::new("Denver, CO", 1609.0, 1.0);
    let mission = MissionProfile::new(vec![
        MissionLeg {
            label: "dry driving".into(),
            environment: car.environment(denver(), Weather::Sunny),
            fraction: 0.78,
        },
        MissionLeg {
            label: "rain".into(),
            environment: car.environment(denver(), Weather::Rainy),
            fraction: 0.15,
        },
        MissionLeg {
            label: "thunderstorm".into(),
            environment: car.environment(denver(), Weather::Thunderstorm),
            fraction: 0.04,
        },
        MissionLeg {
            label: "snow".into(),
            environment: car.environment(denver(), Weather::Snowpack),
            fraction: 0.03,
        },
    ]);

    println!("\nper-leg DUE FIT:");
    for (label, fit) in mission.per_leg_fit(sigma_he, sigma_th) {
        println!(
            "  {:<14} {:>8.2} FIT (thermal share {:>4.1}%)",
            label,
            fit.total().value(),
            100.0 * fit.thermal_share()
        );
    }

    let average = mission.average_fit(sigma_he, sigma_th);
    println!(
        "\nmission-average: {:.2} FIT, thermal share {:.1}%",
        average.total().value(),
        100.0 * average.thermal_share()
    );

    // Check against an element budget.
    let budget = SafetyBudget::asil_d_element(100.0);
    println!(
        "budget check (100 FIT element): {:.0}% used, {:.0}% of the budget is \
         thermal-neutron risk an HE-only analysis would never see -> {}",
        100.0 * budget.utilisation(average),
        100.0 * budget.hidden_thermal_utilisation(average),
        if budget.is_met(average) { "MET" } else { "EXCEEDED" }
    );
}
