//! Validates a `BENCH_*.json` artifact written by the tn-bench
//! harnesses: parses it with the in-tree JSON parser and checks the
//! keys the CI gate (and any downstream dashboard) relies on.
//!
//! ```text
//! cargo run --example validate_bench -- target/tn-bench/BENCH_transport_throughput.json
//! ```
//!
//! Defaults to the transport-throughput artifact when no path is given.
//! Exits non-zero (with a message on stderr) on any missing key,
//! non-numeric value, or malformed JSON, so `scripts/ci.sh` can gate on
//! it directly after the smoke bench run.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

/// Numeric fields every transport-throughput artifact must carry.
const REQUIRED_NUMBERS: &[&str] = &[
    "histories",
    "samples",
    "parallel_threads",
    "serial_direct_hps",
    "serial_cached_hps",
    "parallel_cached_hps",
    "speedup_cached_vs_direct",
    "speedup_parallel_vs_direct",
    "moderation_serial_direct_hps",
    "moderation_serial_cached_hps",
    "moderation_parallel_cached_hps",
    "moderation_speedup_cached_vs_direct",
    "thermal_field_shard_p50_ns",
    "thermal_field_shard_p90_ns",
    "thermal_field_shard_p99_ns",
    "moderation_shard_p50_ns",
    "moderation_shard_p90_ns",
    "moderation_shard_p99_ns",
];

/// Extra numeric fields present when the bench ran with `TN_BENCH_VR`
/// enabled (`"vr": true`). The `*_rel_error` fields may legitimately be
/// zero (clamped from a degenerate estimate), so only the strictly
/// positive subset is listed here.
const REQUIRED_VR_NUMBERS: &[&str] = &[
    "thermal_field_vr_hps",
    "thermal_field_vr_fom_speedup_vs_direct",
    "moderation_vr_hps",
    "moderation_vr_fom_speedup_vs_direct",
];

const REQUIRED_VR_NONNEGATIVE: &[&str] =
    &["thermal_field_vr_rel_error", "moderation_vr_rel_error"];

fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing string field \"name\"")?;
    if name != "transport_throughput" {
        return Err(format!("unexpected bench name {name:?}"));
    }
    doc.get("smoke")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"smoke\"")?;
    let positive = |key: &str| -> Result<f64, String> {
        let value = doc
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("field {key:?} is not a positive number: {value}"));
        }
        Ok(value)
    };
    for key in REQUIRED_NUMBERS {
        positive(key)?;
    }

    // Perf gate: the event-based SoA kernel must never fall behind the
    // per-history direct baseline. The thermal-field workload is where
    // the kernel earns its keep, so it is held strictly; moderation is
    // noisier per-sample (every collision re-looks-up the tables), so a
    // 0.75 margin absorbs smoke-run scheduler noise without letting a
    // real regression through.
    let thermal_speedup = positive("speedup_cached_vs_direct")?;
    if thermal_speedup < 1.0 {
        return Err(format!(
            "SoA kernel slower than direct baseline on thermal_field: {thermal_speedup:.3}x"
        ));
    }
    let moderation_speedup = positive("moderation_speedup_cached_vs_direct")?;
    if moderation_speedup < 0.75 {
        return Err(format!(
            "SoA kernel fell behind direct baseline on moderation: {moderation_speedup:.3}x"
        ));
    }

    let vr = doc
        .get("vr")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"vr\"")?;
    if vr {
        for key in REQUIRED_VR_NUMBERS {
            positive(key)?;
        }
        for key in REQUIRED_VR_NONNEGATIVE {
            let value = doc
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missing numeric field {key:?}"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("field {key:?} is not a non-negative number: {value}"));
            }
        }
    } else if doc.get("thermal_field_vr_hps").is_some() {
        return Err("artifact carries VR fields but \"vr\" is false".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tn-bench/BENCH_transport_throughput.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_bench: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("validate_bench: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_bench: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
