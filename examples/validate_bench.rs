//! Validates a `BENCH_*.json` artifact written by the tn-bench
//! harnesses: parses it with the in-tree JSON parser and checks the
//! keys the CI gate (and any downstream dashboard) relies on.
//!
//! ```text
//! cargo run --example validate_bench -- target/tn-bench/BENCH_transport_throughput.json
//! ```
//!
//! Defaults to the transport-throughput artifact when no path is given.
//! Exits non-zero (with a message on stderr) on any missing key,
//! non-numeric value, or malformed JSON, so `scripts/ci.sh` can gate on
//! it directly after the smoke bench run.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

/// Numeric fields every transport-throughput artifact must carry.
const REQUIRED_NUMBERS: &[&str] = &[
    "histories",
    "samples",
    "parallel_threads",
    "serial_direct_hps",
    "serial_cached_hps",
    "parallel_cached_hps",
    "speedup_cached_vs_direct",
    "speedup_parallel_vs_direct",
    "moderation_serial_direct_hps",
    "moderation_serial_cached_hps",
    "moderation_parallel_cached_hps",
    "moderation_speedup_cached_vs_direct",
    "thermal_field_shard_p50_ns",
    "thermal_field_shard_p90_ns",
    "thermal_field_shard_p99_ns",
    "moderation_shard_p50_ns",
    "moderation_shard_p90_ns",
    "moderation_shard_p99_ns",
];

fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing string field \"name\"")?;
    if name != "transport_throughput" {
        return Err(format!("unexpected bench name {name:?}"));
    }
    doc.get("smoke")
        .and_then(|v| v.as_bool())
        .ok_or("missing bool field \"smoke\"")?;
    for key in REQUIRED_NUMBERS {
        let value = doc
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("field {key:?} is not a positive number: {value}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tn-bench/BENCH_transport_throughput.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_bench: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("validate_bench: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_bench: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
