//! Validates a scenario report artifact written by
//! `thermal-neutrons scenario --name ... --out`: parses it with the
//! in-tree JSON parser and checks the shape plus the per-campaign
//! outcome the CI gate relies on.
//!
//! ```text
//! cargo run --example validate_scenario -- SCENARIO_normal.json
//! ```
//!
//! Exits non-zero (with a message on stderr) on malformed JSON, any
//! missing field, a malformed alert/event/channel entry, a report that
//! is not conformant, or a built-in campaign that does not show its
//! expected outcome (e.g. "normal" must be alert-free, the
//! "loss-of-moderation" step must land as a `step_down`).

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

fn finite(doc: &json::Json, key: &str) -> Result<f64, String> {
    let value = doc
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    if !value.is_finite() {
        return Err(format!("field {key:?} is not finite: {value}"));
    }
    Ok(value)
}

fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("malformed JSON: {e:?}"))?;
    let name = doc
        .get("scenario")
        .and_then(|s| s.get("name"))
        .and_then(|v| v.as_str())
        .ok_or("missing embedded scenario document with a \"name\"")?
        .to_string();
    doc.get("seed")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"seed\"")?;
    let samples = doc
        .get("samples")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"samples\"")?;
    if samples == 0 {
        return Err("report covers zero samples".into());
    }
    if finite(&doc, "baseline_rate")? <= 0.0 {
        return Err("non-positive baseline_rate".into());
    }
    if finite(&doc, "fused_mean_rate")? <= 0.0 {
        return Err("non-positive fused_mean_rate".into());
    }
    let unmatched = doc
        .get("unmatched_alerts")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field \"unmatched_alerts\"")?;
    if unmatched != 0 {
        return Err(format!("{unmatched} alert(s) credited to no scripted event"));
    }
    if doc.get("conformant").and_then(|v| v.as_bool()) != Some(true) {
        return Err("report is not conformant".into());
    }

    let alerts = doc
        .get("alerts")
        .and_then(|v| v.as_array())
        .ok_or("missing array field \"alerts\"")?;
    for (i, alert) in alerts.iter().enumerate() {
        let kind = alert
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("alert[{i}]: missing string field \"kind\""))?;
        if !["step_up", "step_down", "drift"].contains(&kind) {
            return Err(format!("alert[{i}]: unknown kind {kind:?}"));
        }
        let onset = alert
            .get("onset_index")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("alert[{i}]: missing integer field \"onset_index\""))?;
        let detected = alert
            .get("detected_index")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("alert[{i}]: missing integer field \"detected_index\""))?;
        if detected < onset {
            return Err(format!(
                "alert[{i}]: detected_index {detected} precedes onset_index {onset}"
            ));
        }
    }

    let events = doc
        .get("events")
        .and_then(|v| v.as_array())
        .ok_or("missing array field \"events\"")?;
    let mut detected_kinds = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let at = event
            .get("at_hour")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("event[{i}]: missing integer field \"at_hour\""))?;
        if at >= samples {
            return Err(format!("event[{i}]: at_hour {at} outside the campaign"));
        }
        let expected = event
            .get("expected")
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("event[{i}]: missing bool field \"expected\""))?;
        let detected = event
            .get("detected")
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("event[{i}]: missing bool field \"detected\""))?;
        if expected && !detected {
            return Err(format!("event[{i}] at hour {at} was missed"));
        }
        if detected {
            detected_kinds.push(
                event
                    .get("alert_kind")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event[{i}]: detected but no \"alert_kind\""))?
                    .to_string(),
            );
        }
    }

    let channels = doc
        .get("channels")
        .and_then(|v| v.as_array())
        .ok_or("missing array field \"channels\"")?;
    if channels.is_empty() {
        return Err("report carries no channel verdicts".into());
    }
    let mut drifting = Vec::new();
    for (i, channel) in channels.iter().enumerate() {
        let id = channel
            .get("channel")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("channel[{i}]: missing integer field \"channel\""))?;
        let verdict = channel
            .get("verdict")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("channel[{i}]: missing string field \"verdict\""))?;
        if !["healthy", "stuck", "drift", "dropout", "garbage"].contains(&verdict) {
            return Err(format!("channel[{i}]: unknown verdict {verdict:?}"));
        }
        if verdict != "healthy" {
            drifting.push((id, verdict.to_string()));
        }
    }

    // Per-campaign gates for the four built-ins; a custom scenario only
    // gets the generic shape checks above.
    match name.as_str() {
        "normal" if !alerts.is_empty() || !events.is_empty() || !drifting.is_empty() => {
            return Err("\"normal\" must be alert-, event- and fault-free".into());
        }
        "rainstorm-at-leadville" if detected_kinds.len() != 2 => {
            return Err(format!(
                "\"{name}\" must credit both weather steps, credited {}",
                detected_kinds.len()
            ));
        }
        "loss-of-moderation" => {
            if finite(&doc, "moderation_boost")? <= 0.0 {
                return Err("moderated campaign without a positive MC boost".into());
            }
            if detected_kinds != ["step_down"] {
                return Err(format!(
                    "\"{name}\" must credit exactly one step_down, got {detected_kinds:?}"
                ));
            }
        }
        "detector-channel-drift" => {
            if !alerts.is_empty() {
                return Err("voting failed: the faulted channel leaked an alert".into());
            }
            if drifting != [(1, "drift".to_string())] {
                return Err(format!(
                    "\"{name}\" must flag exactly channel 1 as drift, got {drifting:?}"
                ));
            }
        }
        _ => {}
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "SCENARIO_report.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_scenario: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(()) => {
            println!("validate_scenario: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_scenario: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
