//! Quickstart: run the whole study pipeline and print the paper's
//! headline numbers — per-device high-energy/thermal cross-section
//! ratios (Figure 5) and the thermal share of the FIT rate at two
//! locations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tn_core::environment::Environment;
use tn_core::{Pipeline, PipelineConfig};

fn main() {
    let report = Pipeline::new(PipelineConfig::default()).seed(2020).run();

    println!("Figure 5 — average cross-section ratio (high energy / thermal)");
    println!("{:<22} {:>10} {:>10}", "device", "SDC", "DUE");
    for device in report.devices() {
        let fmt = |r: f64| {
            if r.is_infinite() {
                "n/a".to_string()
            } else {
                format!("{r:.2}")
            }
        };
        println!(
            "{:<22} {:>10} {:>10}",
            device.name,
            fmt(device.sdc_ratio()),
            fmt(device.due_ratio())
        );
    }

    println!("\nThermal share of the SDC FIT rate");
    let nyc = Environment::nyc_reference();
    let leadville = Environment::leadville_machine_room();
    println!(
        "{:<22} {:>14} {:>22}",
        "device", "NYC outdoors", "Leadville machine room"
    );
    for device in report.devices() {
        println!(
            "{:<22} {:>13.1}% {:>21.1}%",
            device.name,
            100.0 * device.sdc_fit(&nyc).thermal_share(),
            100.0 * device.sdc_fit(&leadville).thermal_share()
        );
    }
    println!(
        "\nIgnoring thermal neutrons underestimates the worst device's FIT by {:.2}x at Leadville.",
        report
            .devices()
            .iter()
            .map(|d| d.sdc_fit(&leadville).underestimation_factor())
            .fold(0.0, f64::max)
    );
}
