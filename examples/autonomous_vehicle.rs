//! Autonomous-vehicle scenario from the paper's motivation: a COTS GPU
//! running YOLO object detection in a car. How does its error rate move
//! with the weather and the materials around it, and what would shielding
//! cost?
//!
//! ```text
//! cargo run --release --example autonomous_vehicle
//! ```

use tn_core::beamline::{Campaign, Facility};
use tn_core::devices::catalog;
use tn_core::environment::{Environment, Location, Surroundings, Weather};
use tn_core::fault_injection::InjectionCampaign;
use tn_core::fit::DeviceFit;
use tn_core::physics::units::{Energy, Length, Seconds};
use tn_core::physics::Material;
use tn_core::transport::AttenuationCurve;
use tn_core::workloads::yolo::Yolo;

fn main() {
    // Profile YOLO's fault response once.
    let yolo_profile = InjectionCampaign::new(Yolo::new(99)).runs(400).seed(1).execute();
    println!(
        "YOLO fault-injection profile: {:.0}% masked, {:.0}% SDC, {:.0}% DUE",
        100.0 * yolo_profile.masked_fraction(),
        100.0 * yolo_profile.sdc_fraction(),
        100.0 * yolo_profile.due_fraction()
    );

    // Beam-test the vehicle's GPU (a TitanX-class part) on both lines.
    let gpu = catalog::nvidia_titanx();
    let beam_time = Seconds::from_hours(20.0);
    let chipir = Campaign::new(Facility::chipir(), &gpu, "YOLO", yolo_profile)
        .beam_time(beam_time)
        .seed(7)
        .run();
    let rotax = Campaign::new(Facility::rotax(), &gpu, "YOLO", yolo_profile)
        .beam_time(beam_time)
        .seed(8)
        .run();
    println!("\nBeam campaign ({}):", gpu.name());
    println!(
        "  ChipIR: sigma_SDC = {:.3e} cm^2 [{:.2e}, {:.2e}]",
        chipir.sdc.sigma, chipir.sdc.ci.0, chipir.sdc.ci.1
    );
    println!(
        "  ROTAX:  sigma_SDC = {:.3e} cm^2 [{:.2e}, {:.2e}]",
        rotax.sdc.sigma, rotax.sdc.ci.0, rotax.sdc.ci.1
    );
    println!("  HE/thermal ratio: {:.2}", chipir.sdc.sigma / rotax.sdc.sigma);

    // Field rates on the road: Denver altitude, weather sweep. The road
    // slab and the passengers moderate like a machine-room floor.
    let car_surroundings = Surroundings::concrete_floor().with_extra_boost(0.10);
    println!("\nOn-road SDC FIT vs weather (Denver):");
    for weather in Weather::ALL {
        let env = Environment::new(
            Location::new("Denver, CO", 1609.0, 1.0),
            weather,
            car_surroundings,
        );
        let fit = DeviceFit::from_cross_sections(
            tn_core::physics::units::CrossSection(chipir.sdc.sigma),
            tn_core::physics::units::CrossSection(rotax.sdc.sigma),
            &env,
        );
        println!(
            "  {:<13} total {:>7.2} FIT, thermal share {:>4.1}%",
            weather.to_string(),
            fit.total().value(),
            100.0 * fit.thermal_share()
        );
    }

    // Shielding: what the paper says (and why it is impractical).
    println!("\nThermal-neutron shielding options (transmission of a thermal beam):");
    let cd = AttenuationCurve::sweep(
        &Material::cadmium(),
        Energy(0.0253),
        &[Length(0.05), Length(0.1)],
        4000,
        3,
    );
    let bpe = AttenuationCurve::sweep(
        &Material::borated_polyethylene(),
        Energy(0.0253),
        &[Length::from_inches(1.0), Length::from_inches(2.0)],
        4000,
        4,
    );
    for (t, f) in &cd.points {
        println!("  cadmium {:>4.1} mm: {:.4}  (toxic, cannot sit near hot parts)", 10.0 * t.value(), f);
    }
    for (t, f) in &bpe.points {
        println!(
            "  borated PE {:>4.1} in: {:.4}  (thermally insulates the device)",
            t.value() / 2.54,
            f
        );
    }
}
