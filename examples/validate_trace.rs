//! Validates a JSONL trace emitted via `--trace-out`: every line must
//! parse with the in-tree JSON parser and carry the event contract's
//! required keys — numeric `ts`, string `level`, `span` and `msg`.
//!
//! ```text
//! thermal-neutrons waterbox --log-level debug --trace-out /tmp/trace.jsonl
//! cargo run --example validate_trace -- /tmp/trace.jsonl
//! ```
//!
//! Exits non-zero (with a message on stderr) on an unreadable file, an
//! empty trace, a line that is not valid JSON, or a missing/mistyped
//! required key, so `scripts/ci.sh` can gate on it directly after the
//! smoke server run.

use std::process::ExitCode;
use thermal_neutrons::core_api::json;

/// Levels a trace line may carry (must match `tn_obs::Level::as_str`).
const LEVELS: &[&str] = &["error", "warn", "info", "debug", "trace"];

fn validate(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let doc = json::parse(line).map_err(|e| format!("line {n}: malformed JSON: {e:?}"))?;
        let ts = doc
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("line {n}: missing numeric key \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("line {n}: \"ts\" is not a non-negative number: {ts}"));
        }
        let level = doc
            .get("level")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("line {n}: missing string key \"level\""))?;
        if !LEVELS.contains(&level) {
            return Err(format!("line {n}: unknown level {level:?}"));
        }
        for key in ["span", "msg"] {
            doc.get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("line {n}: missing string key {key:?}"))?;
        }
        lines = n;
    }
    if lines == 0 {
        return Err("trace is empty (no events recorded)".to_string());
    }
    Ok(lines)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("validate_trace: usage: validate_trace <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&text) {
        Ok(lines) => {
            println!("validate_trace: {path} OK ({lines} events)");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_trace: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
