#!/usr/bin/env bash
# Hermetic CI gate: the whole workspace must build, test and lint with
# --offline (no registry access — every dependency is a path-local crate;
# see DESIGN.md §6). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --offline --examples
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# ---- transport bench smoke ------------------------------------------------
# One-sample runs of the throughput bench (seconds, not minutes) with the
# variance-reduction pass off and then on, each followed by schema
# validation of the JSON artifact with the in-tree parser. Guards the
# bench harness, the artifact schema (including the conditional VR
# fields) and the SoA-vs-direct floor baked into validate_bench; the
# finer perf numbers are too noisy to gate on in a smoke run.
TN_BENCH_SMOKE=1 TN_BENCH_VR=off cargo bench --offline -p tn-bench --bench ext_transport_throughput
cargo run --offline --example validate_bench -- target/tn-bench/BENCH_transport_throughput.json
TN_BENCH_SMOKE=1 TN_BENCH_VR=on cargo bench --offline -p tn-bench --bench ext_transport_throughput
cargo run --offline --example validate_bench -- target/tn-bench/BENCH_transport_throughput.json

# ---- fleet load-harness smoke ---------------------------------------------
# A short open-loop run against an in-process server (quick surfaces,
# low rate), then schema + p99-gate validation of the BENCH_fleet.json
# artifact. Guards the /v1/fleet path end-to-end: surface build,
# bulk assessment, response cache, and the harness's own report.
TN_BENCH_SMOKE=1 target/release/thermal-neutrons load \
    --rate-hz 60 --duration-s 1.5 --workers 2 --devices 4 --seed 7 \
    --io-model threads \
    --out target/tn-bench/BENCH_fleet.json
cargo run --offline --example validate_load -- target/tn-bench/BENCH_fleet.json

# Saturating close/keep-alive pair on each io model: the same offered
# rate far above close-per-request capacity (~24k req/s on the CI box),
# so achieved rates measure transport throughput. validate_load's
# two-artifact mode then enforces the >= 3x keep-alive speedup on the
# pair.
for io in threads epoll; do
    TN_BENCH_SMOKE=1 target/release/thermal-neutrons load \
        --rate-hz 200000 --duration-s 1.0 --workers 2 --devices 1 --seed 7 \
        --io-model "$io" \
        --out "target/tn-bench/BENCH_fleet_${io}_close.json"
    TN_BENCH_SMOKE=1 target/release/thermal-neutrons load \
        --rate-hz 200000 --duration-s 1.0 --workers 2 --devices 1 --seed 7 \
        --io-model "$io" --keep-alive \
        --out "target/tn-bench/BENCH_fleet_${io}_keepalive.json"
    cargo run --offline --example validate_load -- \
        "target/tn-bench/BENCH_fleet_${io}_keepalive.json" \
        "target/tn-bench/BENCH_fleet_${io}_close.json"
done

# The committed full-run artifact must clear the keep-alive epoll
# throughput floor (10x the close-per-request baseline).
cargo run --offline --example validate_load -- BENCH_fleet.json

# ---- tn-server smoke test -------------------------------------------------
# Start the daemon on an ephemeral port with debug tracing into a JSONL
# file, hit /healthz through bash's /dev/tcp (no curl in the hermetic
# environment), shut it down, then validate every trace line with the
# in-tree JSON parser (required keys: ts, level, span, msg). Runs once
# per io model so both transports get the same wire-level smoke.
for io in threads epoll; do
    smoke_log="$(mktemp)"
    trace_file="$(mktemp)"
    target/release/thermal-neutrons serve --addr 127.0.0.1:0 --threads 2 \
        --io-model "$io" \
        --log-level debug --trace-out "$trace_file" >"$smoke_log" 2>/dev/null &
    server_pid=$!
    trap 'kill "$server_pid" 2>/dev/null || true' EXIT

    port=""
    for _ in $(seq 1 100); do
        # The daemon prints: tn-server listening on http://127.0.0.1:PORT (...)
        port="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$smoke_log")"
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "tn-server smoke test FAILED ($io): daemon never reported its port" >&2
        exit 1
    fi

    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET /healthz HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
    health="$(cat <&3)"
    exec 3<&- 3>&-

    case "$health" in
        *'"status":"ok"'*) echo "tn-server smoke test OK (io=$io, port $port)" ;;
        *)
            echo "tn-server smoke test FAILED ($io): unexpected /healthz response:" >&2
            echo "$health" >&2
            exit 1
            ;;
    esac

    # tn-watch wire smoke: one ingested sample must land in the timeline
    # monitor, and the watch / teardown / surface-cache series must all
    # render in /metrics (zero-valued counters still print).
    body='{"count":500}'
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'POST /v1/timeline/ingest HTTP/1.1\r\nHost: ci\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "${#body}" "$body" >&3
    ingest="$(cat <&3)"
    exec 3<&- 3>&-
    case "$ingest" in
        *'"ingested":1'*) ;;
        *)
            echo "timeline ingest smoke FAILED ($io): unexpected response:" >&2
            echo "$ingest" >&2
            exit 1
            ;;
    esac
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf 'GET /metrics HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
    metrics="$(cat <&3)"
    exec 3<&- 3>&-
    for series in tn_watch_rate tn_watch_baseline 'tn_watch_alerts_total{kind="step_up"}' \
        tn_surface_cache_entries tn_surface_cache_loads_total tn_surface_cache_saves_total \
        tn_conn_idle_closed_total tn_conn_request_cap_closed_total; do
        case "$metrics" in
            *"$series"*) ;;
            *)
                echo "metrics smoke FAILED ($io): series $series missing from /metrics" >&2
                exit 1
                ;;
        esac
    done
    echo "tn-watch metrics smoke OK (io=$io)"

    kill "$server_pid"
    wait "$server_pid" 2>/dev/null || true
    trap - EXIT

    # The smoke exchange above must have produced a parseable JSONL trace
    # (at least the server_bound and per-request events).
    cargo run --offline --example validate_trace -- "$trace_file"
    grep -q '"msg":"request"' "$trace_file" || {
        echo "trace smoke FAILED ($io): no request event in $trace_file" >&2
        exit 1
    }

    rm -f "$smoke_log" "$trace_file"
done

# ---- tn-verify gate --------------------------------------------------------
# The quick verification profile (statistical GOF, differential oracles,
# golden snapshots, injected-bug self-tests) must pass, and the report it
# writes must satisfy the schema the dashboards consume.
verify_report="$(mktemp)"
target/release/thermal-neutrons verify --quick --out "$verify_report"
cargo run --offline --example validate_verify -- "$verify_report"
rm -f "$verify_report"

# Bless-drift check: re-render every golden artefact into a scratch
# directory and require it to be byte-identical to the blessed copy in
# tests/golden/. Catches a committed output-format change whose goldens
# were not regenerated (the in-run golden suite only enforces the
# per-field tolerance classes; CI holds the stricter byte-level line).
bless_dir="$(mktemp -d)"
TN_BLESS=1 TN_GOLDEN_DIR="$bless_dir" target/release/thermal-neutrons verify --quick \
    --out "$bless_dir/VERIFY_report.json" >/dev/null
rm -f "$bless_dir/VERIFY_report.json"
if ! diff -ru tests/golden "$bless_dir"; then
    echo "golden bless-drift FAILED: tests/golden is stale; run TN_BLESS=1 target/release/thermal-neutrons verify and commit the result" >&2
    rm -rf "$bless_dir"
    exit 1
fi
rm -rf "$bless_dir"
echo "tn-verify gate OK"

# ---- tn-watch gate ---------------------------------------------------------
# Replay the paper's water-pan scenario through the streaming monitor:
# the CLI exits non-zero unless it detects the thermal step, and the
# report it writes must satisfy the schema the validator enforces
# (exactly one step_up, magnitude within ±0.05 of the derived boost).
watch_report="$(mktemp)"
target/release/thermal-neutrons watch --seed 2020 --out "$watch_report"
cargo run --offline --example validate_watch -- "$watch_report"
rm -f "$watch_report"
echo "tn-watch gate OK"

# ---- tn-scenario gate ------------------------------------------------------
# Run every built-in campaign twice: the CLI exits non-zero unless the
# campaign meets its conformance contract, the two reports must be
# byte-identical (the whole engine is deterministic in the seed), and
# each report must satisfy the per-campaign schema the validator
# enforces (e.g. "normal" alert-free, "loss-of-moderation" crediting
# exactly one step_down).
scenario_dir="$(mktemp -d)"
for name in normal rainstorm-at-leadville loss-of-moderation detector-channel-drift; do
    target/release/thermal-neutrons scenario --name "$name" --seed 2020 \
        --out "$scenario_dir/$name.a.json" >/dev/null
    target/release/thermal-neutrons scenario --name "$name" --seed 2020 \
        --out "$scenario_dir/$name.b.json" >/dev/null
    if ! cmp -s "$scenario_dir/$name.a.json" "$scenario_dir/$name.b.json"; then
        echo "scenario determinism FAILED: $name reports differ across runs" >&2
        rm -rf "$scenario_dir"
        exit 1
    fi
    cargo run --offline --example validate_scenario -- "$scenario_dir/$name.a.json"
done
rm -rf "$scenario_dir"
echo "tn-scenario gate OK"
