#!/usr/bin/env bash
# Hermetic CI gate: the whole workspace must build, test and lint with
# --offline (no registry access — every dependency is a path-local crate;
# see DESIGN.md §6). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
