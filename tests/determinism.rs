//! Reproducibility guarantees across the whole stack: identical seeds
//! must give identical results regardless of parallelism, and distinct
//! seeds must actually vary.

use thermal_neutrons::core_api as tn;
use tn::fault_injection::InjectionCampaign;
use tn::workloads::mxm::MxM;
use tn::{Pipeline, PipelineConfig};

#[test]
fn pipeline_is_deterministic_across_runs() {
    let a = Pipeline::new(PipelineConfig::quick()).seed(11).run();
    let b = Pipeline::new(PipelineConfig::quick()).seed(11).run();
    assert_eq!(a, b);
}

/// `Pipeline::run` spawns one scoped worker per device, so every run
/// sees a different OS scheduling interleaving. The report must not:
/// each campaign derives its RNG stream from `(seed, device, workload)`
/// and the result slots are positional, so the interleaving is
/// unobservable. Repeated runs — including runs racing each other from
/// parallel threads — must produce byte-identical reports and JSON.
#[test]
fn pipeline_output_is_independent_of_thread_interleaving() {
    let baseline = Pipeline::new(PipelineConfig::quick()).seed(2).run();
    for _ in 0..3 {
        assert_eq!(Pipeline::new(PipelineConfig::quick()).seed(2).run(), baseline);
    }
    // Contend for the scheduler: four pipelines at once, same seed.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| Pipeline::new(PipelineConfig::quick()).seed(2).run()))
            .collect();
        for handle in handles {
            let report = handle.join().expect("pipeline thread panicked");
            assert_eq!(report, baseline);
            assert_eq!(report.to_json(), baseline.to_json());
        }
    });
}

#[test]
fn pipeline_varies_with_seed() {
    let a = Pipeline::new(PipelineConfig::quick()).seed(11).run();
    let b = Pipeline::new(PipelineConfig::quick()).seed(12).run();
    assert_ne!(a, b);
}

#[test]
fn injection_campaign_thread_count_is_irrelevant() {
    let one = InjectionCampaign::new(MxM::new(12, 5))
        .runs(96)
        .seed(9)
        .threads(1)
        .execute();
    let many = InjectionCampaign::new(MxM::new(12, 5))
        .runs(96)
        .seed(9)
        .threads(8)
        .execute();
    assert_eq!(one, many);
}

#[test]
fn detector_and_transport_streams_are_seed_stable() {
    use tn::environment::{Environment, Location, Surroundings, Weather};
    let env = Environment::new(
        Location::los_alamos(),
        Weather::Sunny,
        Surroundings::concrete_floor(),
    );
    let a = tn::detector::WaterBoxExperiment::paper_configuration(env.clone()).run(77);
    let b = tn::detector::WaterBoxExperiment::paper_configuration(env).run(77);
    assert_eq!(a, b);
}

#[test]
fn transport_tally_is_invariant_across_thread_counts() {
    use tn::physics::units::{Energy, Length};
    use tn::physics::Material;
    use tn::transport::{SlabStack, Transport, TransportConfig};

    use tn::transport::Layer;
    let stack = SlabStack::new(vec![
        Layer::new(Material::water(), Length::from_inches(1.0)),
        Layer::new(Material::cadmium(), Length(0.05)),
        Layer::new(Material::water(), Length::from_inches(1.0)),
    ]);
    // 10_000 is not a multiple of SHARD_SIZE, so the last shard is
    // partial — the decomposition must still be identical everywhere.
    let histories = 10_000;
    let reference = Transport::with_config(stack.clone(), TransportConfig::serial());
    let beam = reference.run_beam(Energy::from_mev(2.0), histories, 4242);
    let diffuse = reference.run_diffuse(Energy(0.0253), histories, 4242);
    for threads in [2, 3, 8, 64] {
        let t = Transport::with_config(stack.clone(), TransportConfig::with_threads(threads));
        assert_eq!(t.run_beam(Energy::from_mev(2.0), histories, 4242), beam);
        assert_eq!(t.run_diffuse(Energy(0.0253), histories, 4242), diffuse);
    }
}

/// Shard-math edge cases: zero histories produce a well-defined empty
/// tally (fractions are 0.0, never NaN), and history counts that leave
/// a ragged final shard — or less than one full shard — merge
/// identically at any thread count, for both the analog and the
/// variance-reduced kernels.
#[test]
fn shard_edge_cases_are_well_defined_and_thread_invariant() {
    use tn::physics::units::{Energy, Length};
    use tn::physics::Material;
    use tn::transport::{
        SlabStack, Transport, TransportConfig, VarianceReduction, SHARD_SIZE,
    };

    let stack = SlabStack::single(Material::water(), Length::from_inches(2.0));
    let serial = Transport::with_config(stack.clone(), TransportConfig::serial());

    // histories == 0: zero shards, empty tally, finite rates.
    let empty = serial.run_beam(Energy::from_mev(1.0), 0, 99);
    assert_eq!(empty.histories, 0);
    assert_eq!(empty.transmitted_fraction(), 0.0);
    assert_eq!(empty.absorbed_fraction(), 0.0);
    assert_eq!(empty.thermal_escape_fraction(), 0.0);
    let empty_w = serial.run_beam_weighted(
        Energy::from_mev(1.0),
        0,
        99,
        VarianceReduction::default(),
    );
    assert_eq!(empty_w.histories, 0);
    assert_eq!(empty_w.transmitted_fraction(), 0.0);
    assert_eq!(empty_w.absorbed_fraction(), 0.0);
    assert_eq!(empty_w.weight_sum(), 0.0);

    // Ragged and sub-shard history counts: identical at any thread count.
    for histories in [1, SHARD_SIZE - 1, SHARD_SIZE + 1, 3 * SHARD_SIZE + 1234] {
        let reference = serial.run_beam(Energy::from_mev(2.0), histories, 4242);
        let reference_w = serial.run_diffuse_weighted(
            Energy(0.0253),
            histories,
            4242,
            VarianceReduction::default(),
        );
        assert_eq!(reference.histories, histories);
        for threads in [2, 5, 16] {
            let t = Transport::with_config(stack.clone(), TransportConfig::with_threads(threads));
            assert_eq!(
                t.run_beam(Energy::from_mev(2.0), histories, 4242),
                reference,
                "{histories} histories diverged at {threads} threads"
            );
            assert_eq!(
                t.run_diffuse_weighted(
                    Energy(0.0253),
                    histories,
                    4242,
                    VarianceReduction::default()
                ),
                reference_w,
                "weighted {histories} histories diverged at {threads} threads"
            );
        }
    }
}

/// The process-wide default (`--transport-threads`) must never change
/// results — the full pipeline JSON and the room boost factor are
/// byte-identical at any setting. One test owns every mutation of the
/// global so concurrently-running tests never observe a transient
/// value they didn't set (any value they *do* observe is harmless:
/// tallies are thread-count-invariant, which is what this proves).
#[test]
fn global_thread_default_does_not_change_results() {
    use tn::environment::DataCenterRoom;
    use tn::transport::{default_threads, set_default_threads};

    let baseline_report = Pipeline::new(PipelineConfig::quick()).seed(7).run();
    let baseline_json = baseline_report.to_json();
    let baseline_factor = DataCenterRoom::air_cooled().derive_thermal_factor(4_000, 9);
    for threads in [2, 8] {
        set_default_threads(threads);
        assert_eq!(default_threads(), threads);
        let report = Pipeline::new(PipelineConfig::quick()).seed(7).run();
        assert_eq!(report, baseline_report);
        assert_eq!(report.to_json(), baseline_json);
        assert_eq!(
            DataCenterRoom::air_cooled().derive_thermal_factor(4_000, 9),
            baseline_factor
        );
    }
    set_default_threads(1);
}

/// Telemetry is write-only: running the pipeline with TRACE-level
/// structured logging, a JSONL trace sink and a virtual clock must give
/// the byte-identical report JSON that a silent run gives. One test owns
/// every mutation of the tn-obs globals (level, stderr sink, trace file,
/// clock) so parallel tests never race on them.
#[test]
fn trace_level_telemetry_never_changes_results() {
    use std::sync::Arc;

    let baseline = Pipeline::new(PipelineConfig::quick()).seed(31).run();
    let baseline_json = baseline.to_json();

    let trace_path = std::env::temp_dir().join(format!(
        "tn-determinism-trace-{}.jsonl",
        std::process::id()
    ));
    tn::obs::set_stderr(false);
    tn::obs::set_trace_file(trace_path.to_str().expect("utf-8 temp path"))
        .expect("open trace file");
    tn::obs::set_clock(Arc::new(tn::obs::VirtualClock::starting_at(1_000)));
    tn::obs::set_level_str("trace").expect("trace is a valid level");

    let traced = Pipeline::new(PipelineConfig::quick()).seed(31).run();

    tn::obs::set_level_str("off").expect("off is a valid level");
    tn::obs::set_clock(Arc::new(tn::obs::RealClock));
    tn::obs::set_stderr(true);

    assert_eq!(traced, baseline, "TRACE telemetry must be write-only");
    assert_eq!(
        traced.to_json(),
        baseline_json,
        "report JSON must be byte-identical at TRACE vs OFF"
    );
    // The traced run must actually have produced trace events.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file readable");
    let _ = std::fs::remove_file(&trace_path);
    assert!(
        trace.lines().count() > 0,
        "TRACE run emitted no events into {}",
        trace_path.display()
    );
    assert!(trace.contains("\"msg\":\"pipeline_start\""), "{trace}");
    assert!(trace.contains("\"span\":\"pipeline\""), "{trace}");
}

#[test]
fn validation_passes_on_the_canonical_seed() {
    let report = Pipeline::new(PipelineConfig::default()).seed(2020).run();
    let v = tn::validation::validate(&report, 0.5);
    assert!(v.is_clean(), "{:?}", v.findings);
}
