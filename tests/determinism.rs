//! Reproducibility guarantees across the whole stack: identical seeds
//! must give identical results regardless of parallelism, and distinct
//! seeds must actually vary.

use thermal_neutrons::core_api as tn;
use tn::fault_injection::InjectionCampaign;
use tn::workloads::mxm::MxM;
use tn::{Pipeline, PipelineConfig};

#[test]
fn pipeline_is_deterministic_across_runs() {
    let a = Pipeline::new(PipelineConfig::quick()).seed(11).run();
    let b = Pipeline::new(PipelineConfig::quick()).seed(11).run();
    assert_eq!(a, b);
}

/// `Pipeline::run` spawns one scoped worker per device, so every run
/// sees a different OS scheduling interleaving. The report must not:
/// each campaign derives its RNG stream from `(seed, device, workload)`
/// and the result slots are positional, so the interleaving is
/// unobservable. Repeated runs — including runs racing each other from
/// parallel threads — must produce byte-identical reports and JSON.
#[test]
fn pipeline_output_is_independent_of_thread_interleaving() {
    let baseline = Pipeline::new(PipelineConfig::quick()).seed(2).run();
    for _ in 0..3 {
        assert_eq!(Pipeline::new(PipelineConfig::quick()).seed(2).run(), baseline);
    }
    // Contend for the scheduler: four pipelines at once, same seed.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| Pipeline::new(PipelineConfig::quick()).seed(2).run()))
            .collect();
        for handle in handles {
            let report = handle.join().expect("pipeline thread panicked");
            assert_eq!(report, baseline);
            assert_eq!(report.to_json(), baseline.to_json());
        }
    });
}

#[test]
fn pipeline_varies_with_seed() {
    let a = Pipeline::new(PipelineConfig::quick()).seed(11).run();
    let b = Pipeline::new(PipelineConfig::quick()).seed(12).run();
    assert_ne!(a, b);
}

#[test]
fn injection_campaign_thread_count_is_irrelevant() {
    let one = InjectionCampaign::new(MxM::new(12, 5))
        .runs(96)
        .seed(9)
        .threads(1)
        .execute();
    let many = InjectionCampaign::new(MxM::new(12, 5))
        .runs(96)
        .seed(9)
        .threads(8)
        .execute();
    assert_eq!(one, many);
}

#[test]
fn detector_and_transport_streams_are_seed_stable() {
    use tn::environment::{Environment, Location, Surroundings, Weather};
    let env = Environment::new(
        Location::los_alamos(),
        Weather::Sunny,
        Surroundings::concrete_floor(),
    );
    let a = tn::detector::WaterBoxExperiment::paper_configuration(env.clone()).run(77);
    let b = tn::detector::WaterBoxExperiment::paper_configuration(env).run(77);
    assert_eq!(a, b);
}

#[test]
fn validation_passes_on_the_canonical_seed() {
    let report = Pipeline::new(PipelineConfig::default()).seed(2020).run();
    let v = tn::validation::validate(&report, 0.5);
    assert!(v.is_clean(), "{:?}", v.findings);
}
