//! End-to-end integration tests: every paper artefact's *shape* must
//! survive the full public-API pipeline (these are the same claims the
//! benches print, locked in as assertions).

use thermal_neutrons::core_api as tn;
use tn::environment::{Environment, Location, Surroundings, Weather};
use tn::physics::spectrum::{chipir_reference, rotax_reference};
use tn::physics::EnergyBand;
use tn::{Pipeline, PipelineConfig};

fn study() -> tn::StudyReport {
    Pipeline::new(PipelineConfig::default()).seed(2020).run()
}

#[test]
fn fig2_beamline_fluxes_match_publication() {
    let chipir = chipir_reference();
    let rotax = rotax_reference();
    let he = chipir.flux_in(EnergyBand::HighEnergy).value();
    assert!((he - 5.4e6).abs() / 5.4e6 < 0.02, "ChipIR HE {he:e}");
    let th = chipir.flux_in(EnergyBand::Thermal).value();
    assert!((0.8..1.3).contains(&(th / 4.0e5)), "ChipIR thermal {th:e}");
    let rt = rotax.flux_in(EnergyBand::Thermal).value();
    assert!((rt - 2.72e6).abs() / 2.72e6 < 0.03, "ROTAX thermal {rt:e}");
}

#[test]
fn fig5_sdc_ratios_reproduce_within_forty_percent() {
    let report = study();
    let expected = [
        ("Intel Xeon Phi", 10.14),
        ("NVIDIA K20", 2.0),
        ("NVIDIA TitanX", 3.0),
        ("AMD APU (CPU+GPU)", 2.5),
        ("Xilinx Zynq-7000", 2.33),
    ];
    for (name, paper) in expected {
        let measured = report.device(name).unwrap().sdc_ratio();
        assert!(
            (measured / paper - 1.0).abs() < 0.4,
            "{name}: measured {measured:.2} vs paper {paper}"
        );
    }
}

#[test]
fn fig5_due_ordering_matches_paper() {
    let report = study();
    let due = |name: &str| report.device(name).unwrap().due_ratio();
    // TitanX (FinFET) DUE ratio far above K20 (planar).
    assert!(due("NVIDIA TitanX") > 1.5 * due("NVIDIA K20"));
    // The APU hybrid's DUE is near thermal parity — the paper's headline.
    assert!(due("AMD APU (CPU+GPU)") < 2.0);
    // Xeon Phi's thermal weakness shows in both classes.
    assert!(due("Intel Xeon Phi") > 4.0);
}

#[test]
fn fig1_apu_thermal_sensitivity_is_not_negligible() {
    let report = study();
    for name in ["AMD APU (CPU)", "AMD APU (GPU)", "AMD APU (CPU+GPU)"] {
        let device = report.device(name).unwrap();
        for (code, ratio) in device.per_workload_sdc_ratios() {
            assert!(
                ratio < 8.0,
                "{name}/{code}: HE/thermal ratio {ratio} — thermal should be significant"
            );
        }
    }
}

#[test]
fn fit_anchor_points_land_in_paper_bands() {
    let report = study();
    let room = Surroundings::hpc_machine_room();
    let nyc = Environment::new(Location::new_york(), Weather::Sunny, room);
    let leadville = Environment::new(Location::leadville(), Weather::Sunny, room);

    // Xeon Phi SDC @ NYC: paper 4.2%.
    let phi = report.device("Intel Xeon Phi").unwrap();
    let share = phi.sdc_fit(&nyc).thermal_share();
    assert!((0.02..0.08).contains(&share), "Xeon Phi NYC SDC share {share}");

    // K20 SDC @ Leadville: paper 29%.
    let k20 = report.device("NVIDIA K20").unwrap();
    let share = k20.sdc_fit(&leadville).thermal_share();
    assert!((0.18..0.42).contains(&share), "K20 Leadville SDC share {share}");

    // APU CPU+GPU DUE @ Leadville: paper 39%.
    let apu = report.device("AMD APU (CPU+GPU)").unwrap();
    let share = apu.due_fit(&leadville).thermal_share();
    assert!((0.25..0.55).contains(&share), "APU Leadville DUE share {share}");

    // "the thermal neutron contribution … can be up to 40%".
    let max = report
        .devices()
        .iter()
        .flat_map(|d| {
            [
                d.sdc_fit(&leadville).thermal_share(),
                d.due_fit(&leadville).thermal_share(),
            ]
        })
        .fold(0.0, f64::max);
    assert!((0.30..0.60).contains(&max), "max thermal share {max}");
}

#[test]
fn fig6_water_box_step_matches_paper_band() {
    let env = Environment::new(
        Location::los_alamos(),
        Weather::Sunny,
        Surroundings::concrete_floor(),
    );
    let outcome = tn::detector::WaterBoxExperiment::paper_configuration(env).run(20190420);
    // Paper: +24%. Accept the MC band around it.
    assert!(
        (0.10..0.40).contains(&outcome.step()),
        "water step {} (paper 0.24)",
        outcome.step()
    );
}

#[test]
fn fig4_ddr_structure_holds_end_to_end() {
    use tn::devices::ddr::{classify, CorrectLoop, DdrModule};
    use tn::physics::units::{Flux, Seconds};
    let beam = Flux(2.72e6);
    let mut t3 = CorrectLoop::new(DdrModule::ddr3(), 99);
    let c3 = classify(&t3.run(beam, Seconds::from_hours(3.0), Seconds(10.0)));
    let mut t4 = CorrectLoop::new(DdrModule::ddr4(), 99);
    let c4 = classify(&t4.run(beam, Seconds::from_hours(30.0), Seconds(10.0)));

    // Direction asymmetry, opposite per generation.
    assert!(c3.direction_fraction(tn::devices::FlipDirection::OneToZero) > 0.85);
    assert!(c4.direction_fraction(tn::devices::FlipDirection::ZeroToOne) > 0.85);
    // Category shift.
    assert!(c4.permanent_fraction() > c3.permanent_fraction());
    // Both generations show SEFIs over long runs.
    assert!(c3.sefi + c4.sefi > 0);
}
