//! Property-based cross-crate invariants exercised through the public
//! API (proptest keeps case counts modest because each case runs real
//! Monte-Carlo work).

use proptest::prelude::*;
use thermal_neutrons::core_api as tn;
use tn::devices::catalog::fit_b10_population;
use tn::devices::response::{ErrorClass, SensitiveRegion};
use tn::environment::{Environment, Location, Surroundings, Weather};
use tn::fit::DeviceFit;
use tn::physics::spectrum::{chipir_reference, rotax_reference};
use tn::physics::units::CrossSection;
use tn::physics::EnergyBand;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fitted_b10_hits_any_reachable_target(
        sigma_exp in -10.0f64..-7.0,
        target in 0.5f64..20.0,
    ) {
        let sigma = CrossSection(10f64.powf(sigma_exp));
        let b10 = fit_b10_population(sigma, target);
        prop_assert!(b10 > 0.0);
        // Reconstruct the ratio through the beam folds and verify.
        let region = SensitiveRegion::new(sigma, b10);
        let chipir = chipir_reference();
        let rotax = rotax_reference();
        let he = region.event_rate(&chipir) / chipir.flux_in(EnergyBand::HighEnergy).value();
        let th = region.event_rate(&rotax) / rotax.flux_in(EnergyBand::Thermal).value();
        let measured = he / th;
        prop_assert!((measured - target).abs() / target < 0.03,
            "target {target}, measured {measured}");
    }

    #[test]
    fn thermal_share_is_monotone_in_thermal_sensitivity(
        he_exp in -10.0f64..-8.0,
        th1 in 0.01f64..0.5,
        th2_mult in 1.1f64..10.0,
    ) {
        let env = Environment::leadville_machine_room();
        let sigma_he = CrossSection(10f64.powf(he_exp));
        let a = DeviceFit::from_cross_sections(sigma_he, sigma_he * th1, &env);
        let b = DeviceFit::from_cross_sections(sigma_he, sigma_he * (th1 * th2_mult), &env);
        prop_assert!(b.thermal_share() > a.thermal_share());
        prop_assert!(a.thermal_share() > 0.0 && b.thermal_share() < 1.0);
    }

    #[test]
    fn environment_fluxes_scale_sanely(altitude in 0.0f64..4000.0) {
        let loc = Location::new("site", altitude, 1.0);
        let env = Environment::new(loc, Weather::Sunny, Surroundings::outdoors());
        let nyc = Environment::nyc_reference();
        // Higher than NYC -> more flux, never less (10 m reference).
        if altitude > 10.0 {
            prop_assert!(env.high_energy_flux().value() >= nyc.high_energy_flux().value());
            // Thermal grows at least as fast as HE (super-linear exponent).
            prop_assert!(
                env.thermal_to_high_energy_ratio() >= nyc.thermal_to_high_energy_ratio() - 1e-12
            );
        }
    }

    #[test]
    fn weather_and_room_compose_multiplicatively(
        rainy in proptest::bool::ANY,
        water in proptest::bool::ANY,
    ) {
        let weather = if rainy { Weather::Thunderstorm } else { Weather::Sunny };
        let surroundings = if water {
            Surroundings::water_cooled()
        } else {
            Surroundings::outdoors()
        };
        let env = Environment::new(Location::new_york(), weather, surroundings);
        let expected = 1.0
            * if rainy { 2.0 } else { 1.0 }
            * if water { 1.24 } else { 1.0 };
        let measured = env.thermal_flux() / Environment::nyc_reference().thermal_flux();
        prop_assert!((measured - expected).abs() < 1e-9);
    }

    #[test]
    fn boron_free_regions_never_respond_to_rotax(sigma_exp in -10.0f64..-7.0) {
        let region = SensitiveRegion::boron_free(CrossSection(10f64.powf(sigma_exp)));
        let rate = region.event_rate(&rotax_reference());
        // ROTAX has no flux above the fast threshold, and no B10 means no
        // thermal coupling: the device is dark.
        prop_assert!(rate < 1e-12, "rate = {rate:e}");
    }

    #[test]
    fn device_catalog_ratio_invariants_hold(seed in 0u64..u64::MAX) {
        // Seed-independent (catalog is deterministic); run a light check
        // on a random subset to exercise the accessor surface.
        let devices = tn::devices::catalog::all_compute_devices();
        let pick = (seed % devices.len() as u64) as usize;
        let device = &devices[pick];
        let sdc = device.analytic_ratio(ErrorClass::Sdc);
        prop_assert!(sdc > 0.5, "{}: sdc ratio {sdc}", device.name());
        let (target, _) = device.target_ratios();
        prop_assert!((sdc - target).abs() / target < 0.03);
    }
}
