//! Property-style cross-crate invariants exercised through the public
//! API (fixed-seed `tn_rng` generator loops keep case counts modest
//! because each case runs real Monte-Carlo work).

use tn_rng::Rng;
use thermal_neutrons::core_api as tn;
use tn::devices::catalog::fit_b10_population;
use tn::devices::response::{ErrorClass, SensitiveRegion};
use tn::environment::{Environment, Location, Surroundings, Weather};
use tn::fit::DeviceFit;
use tn::physics::spectrum::{chipir_reference, rotax_reference};
use tn::physics::units::CrossSection;
use tn::physics::EnergyBand;

const CASES: usize = 24;

#[test]
fn fitted_b10_hits_any_reachable_target() {
    let mut rng = Rng::seed_from_u64(0xc01);
    for _ in 0..CASES {
        let sigma_exp = rng.gen_range(-10.0..-7.0);
        let target = rng.gen_range(0.5..20.0);
        let sigma = CrossSection(10f64.powf(sigma_exp));
        let b10 = fit_b10_population(sigma, target);
        assert!(b10 > 0.0);
        // Reconstruct the ratio through the beam folds and verify.
        let region = SensitiveRegion::new(sigma, b10);
        let chipir = chipir_reference();
        let rotax = rotax_reference();
        let he = region.event_rate(&chipir) / chipir.flux_in(EnergyBand::HighEnergy).value();
        let th = region.event_rate(&rotax) / rotax.flux_in(EnergyBand::Thermal).value();
        let measured = he / th;
        assert!(
            (measured - target).abs() / target < 0.03,
            "target {target}, measured {measured}"
        );
    }
}

#[test]
fn thermal_share_is_monotone_in_thermal_sensitivity() {
    let mut rng = Rng::seed_from_u64(0xc02);
    for _ in 0..CASES {
        let he_exp = rng.gen_range(-10.0..-8.0);
        let th1 = rng.gen_range(0.01..0.5);
        let th2_mult = rng.gen_range(1.1..10.0);
        let env = Environment::leadville_machine_room();
        let sigma_he = CrossSection(10f64.powf(he_exp));
        let a = DeviceFit::from_cross_sections(sigma_he, sigma_he * th1, &env);
        let b = DeviceFit::from_cross_sections(sigma_he, sigma_he * (th1 * th2_mult), &env);
        assert!(b.thermal_share() > a.thermal_share());
        assert!(a.thermal_share() > 0.0 && b.thermal_share() < 1.0);
    }
}

#[test]
fn environment_fluxes_scale_sanely() {
    let mut rng = Rng::seed_from_u64(0xc03);
    for _ in 0..CASES {
        let altitude = rng.gen_range(0.0..4000.0);
        let loc = Location::new("site", altitude, 1.0);
        let env = Environment::new(loc, Weather::Sunny, Surroundings::outdoors());
        let nyc = Environment::nyc_reference();
        // Higher than NYC -> more flux, never less (10 m reference).
        if altitude > 10.0 {
            assert!(env.high_energy_flux().value() >= nyc.high_energy_flux().value());
            // Thermal grows at least as fast as HE (super-linear exponent).
            assert!(
                env.thermal_to_high_energy_ratio() >= nyc.thermal_to_high_energy_ratio() - 1e-12
            );
        }
    }
}

#[test]
fn weather_and_room_compose_multiplicatively() {
    for (rainy, water) in [(false, false), (false, true), (true, false), (true, true)] {
        let weather = if rainy { Weather::Thunderstorm } else { Weather::Sunny };
        let surroundings = if water {
            Surroundings::water_cooled()
        } else {
            Surroundings::outdoors()
        };
        let env = Environment::new(Location::new_york(), weather, surroundings);
        let expected = 1.0 * if rainy { 2.0 } else { 1.0 } * if water { 1.24 } else { 1.0 };
        let measured = env.thermal_flux() / Environment::nyc_reference().thermal_flux();
        assert!((measured - expected).abs() < 1e-9);
    }
}

#[test]
fn boron_free_regions_never_respond_to_rotax() {
    let mut rng = Rng::seed_from_u64(0xc04);
    for _ in 0..CASES {
        let sigma_exp = rng.gen_range(-10.0..-7.0);
        let region = SensitiveRegion::boron_free(CrossSection(10f64.powf(sigma_exp)));
        let rate = region.event_rate(&rotax_reference());
        // ROTAX has no flux above the fast threshold, and no B10 means no
        // thermal coupling: the device is dark.
        assert!(rate < 1e-12, "rate = {rate:e}");
    }
}

#[test]
fn device_catalog_ratio_invariants_hold() {
    // Deterministic catalog: check every device, not a sampled subset.
    for device in &tn::devices::catalog::all_compute_devices() {
        let sdc = device.analytic_ratio(ErrorClass::Sdc);
        assert!(sdc > 0.5, "{}: sdc ratio {sdc}", device.name());
        let (target, _) = device.target_ratios();
        assert!((sdc - target).abs() / target < 0.03);
    }
}
