//! End-to-end coverage of the tn-verify subsystem from the workspace
//! root: report determinism, golden-file freshness against the blessed
//! copies in `tests/golden/`, and report-shape guarantees the CI gate
//! (`examples/validate_verify.rs`) depends on.

use thermal_neutrons::core_api::json;
use tn_verify::{golden, run_all, VerifyOptions};

#[test]
fn quick_report_is_byte_identical_across_runs() {
    let opts = VerifyOptions {
        seed: 2020,
        quick: true,
    };
    let a = run_all(opts).to_json();
    let b = run_all(opts).to_json();
    assert_eq!(a, b, "same seed must produce a byte-identical report");
}

#[test]
fn blessed_goldens_match_freshly_rendered_artefacts() {
    // Renders every golden artefact from scratch and compares it against
    // the blessed copy with the same tolerance classes `verify` uses.
    // Failing here means someone changed an output format without
    // re-blessing (`TN_BLESS=1 cargo run -- verify`).
    for (file, rendered) in golden::render_artefacts() {
        let path = golden::golden_dir().join(file);
        let blessed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read blessed golden {}: {e}", path.display()));
        let check = golden::compare_texts(file, &blessed, &rendered);
        assert!(
            check.passed,
            "golden {file} is stale: {} (re-bless with TN_BLESS=1)",
            check.detail
        );
    }
}

#[test]
fn report_parses_and_selftest_suite_is_present_and_green() {
    let report = run_all(VerifyOptions {
        seed: 7,
        quick: true,
    });
    let doc = json::parse(&report.to_json()).expect("report must be valid JSON");
    assert_eq!(doc.get("seed").and_then(|v| v.as_u64()), Some(7));
    assert_eq!(doc.get("quick").and_then(|v| v.as_bool()), Some(true));
    let checks = doc
        .get("checks")
        .and_then(|v| v.as_array())
        .expect("checks array");
    let selftests: Vec<_> = checks
        .iter()
        .filter(|c| c.get("suite").and_then(|v| v.as_str()) == Some("selftest"))
        .collect();
    assert!(
        selftests.len() >= 2,
        "expected both injected-bug self-tests, found {}",
        selftests.len()
    );
    for check in selftests {
        assert_eq!(
            check.get("passed").and_then(|v| v.as_bool()),
            Some(true),
            "self-test failed: the layer did not detect its injected bug ({:?})",
            check.get("name").and_then(|v| v.as_str())
        );
    }
}

#[test]
fn full_and_quick_reports_cover_the_same_check_set() {
    // `--quick` shrinks sample counts, never the check inventory: CI's
    // quick gate must exercise every check the full run does.
    let names = |quick: bool| -> Vec<String> {
        run_all(VerifyOptions { seed: 2020, quick })
            .checks
            .iter()
            .map(|c| format!("{}/{}", c.suite, c.name))
            .collect()
    };
    assert_eq!(names(true), names(false));
}
