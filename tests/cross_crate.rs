//! Cross-crate integration: campaign arithmetic, environment folding and
//! experiment-procedure rules working together through public APIs only.

use thermal_neutrons::core_api as tn;
use tn::beamline::{BeamSetup, BoardSlot, Campaign, Facility};
use tn::devices::catalog;
use tn::environment::Environment;
use tn::fault_injection::{InjectionCampaign, InjectionStats};
use tn::fit::DeviceFit;
use tn::physics::units::{CrossSection, Seconds};
use tn::workloads::mxm::MxM;

fn profile() -> InjectionStats {
    InjectionCampaign::new(MxM::new(16, 1)).runs(200).seed(3).execute()
}

#[test]
fn campaign_cross_sections_feed_fit_directly() {
    let k20 = catalog::nvidia_k20();
    let p = profile();
    let he = Campaign::new(Facility::chipir(), &k20, "MxM", p)
        .beam_time(Seconds::from_hours(20.0))
        .seed(1)
        .run();
    let th = Campaign::new(Facility::rotax(), &k20, "MxM", p)
        .beam_time(Seconds::from_hours(20.0))
        .seed(2)
        .run();
    let fit = DeviceFit::from_cross_sections(
        CrossSection(he.sdc.sigma),
        CrossSection(th.sdc.sigma),
        &Environment::leadville_machine_room(),
    );
    assert!(fit.total().value() > 0.0);
    assert!(fit.thermal_share() > 0.05 && fit.thermal_share() < 0.6);
}

#[test]
fn derated_far_board_agrees_with_near_board() {
    let apu = catalog::amd_apu_hybrid();
    let p = profile();
    let setup = BeamSetup::chipir_style(vec![
        BoardSlot { label: "near".into(), distance_m: 1.0 },
        BoardSlot { label: "far".into(), distance_m: 2.0 },
    ]);
    let long = Seconds::from_hours(60.0);
    let near = Campaign::new(Facility::chipir(), &apu, "MxM", p)
        .beam_time(long)
        .derating(setup.derating(0))
        .seed(5)
        .run();
    let far = Campaign::new(Facility::chipir(), &apu, "MxM", p)
        .beam_time(long)
        .derating(setup.derating(1))
        .seed(6)
        .run();
    // Fewer counts far from the aperture…
    assert!(far.sdc.count < near.sdc.count);
    // …but the *cross section* estimate is distance-invariant.
    let rel = (near.sdc.sigma - far.sdc.sigma).abs() / near.sdc.sigma;
    assert!(rel < 0.25, "near {:e} vs far {:e}", near.sdc.sigma, far.sdc.sigma);
}

#[test]
fn same_device_both_beams_is_the_procedure() {
    // The paper stresses using the same physical device on both lines.
    // Our Device is cloneable state, so the same instance feeds both
    // campaigns; the ratio uses identical response parameters.
    let titan = catalog::nvidia_titanx();
    let p = profile();
    let he = Campaign::new(Facility::chipir(), &titan, "MxM", p)
        .beam_time(Seconds::from_hours(30.0))
        .seed(9)
        .run();
    let th = Campaign::new(Facility::rotax(), &titan, "MxM", p)
        .beam_time(Seconds::from_hours(30.0))
        .seed(10)
        .run();
    let ratio = he.sdc.sigma / th.sdc.sigma;
    let (target, _) = titan.target_ratios();
    assert!(
        (ratio / target - 1.0).abs() < 0.35,
        "ratio {ratio:.2} vs target {target}"
    );
}

#[test]
fn confidence_intervals_shrink_with_beam_time() {
    let k20 = catalog::nvidia_k20();
    let p = profile();
    let short = Campaign::new(Facility::rotax(), &k20, "MxM", p)
        .beam_time(Seconds::from_hours(1.0))
        .seed(11)
        .run();
    let long = Campaign::new(Facility::rotax(), &k20, "MxM", p)
        .beam_time(Seconds::from_hours(64.0))
        .seed(12)
        .run();
    let (a, b) = (
        short.sdc.relative_uncertainty().unwrap_or(f64::INFINITY),
        long.sdc.relative_uncertainty().unwrap_or(f64::INFINITY),
    );
    assert!(b < a, "short {a}, long {b}");
}

#[test]
fn acceleration_factor_contextualises_beam_hours() {
    // One ChipIR hour is centuries of NYC field exposure: the reason beam
    // experiments are the only way to measure these rates.
    let years_per_hour = Facility::chipir()
        .acceleration_factor(Environment::nyc_reference().high_energy_flux())
        / (365.25 * 24.0);
    assert!(
        years_per_hour > 100_000.0,
        "{years_per_hour} field-years per beam-hour"
    );
}

#[test]
fn workspace_umbrella_reexports_are_usable() {
    // The root package exposes the core API under `core_api`.
    let report = tn::Pipeline::new(tn::PipelineConfig::quick()).seed(1).run();
    assert_eq!(report.devices().len(), 8);
}
