//! Fleet-subsystem acceptance tests: risk-surface determinism and
//! accuracy, the no-transport-on-hit guarantee, and the registry
//! snapshot round-trip through the server's `fleet_path` config.

use std::io::{Read, Write};
use std::net::TcpStream;
use thermal_neutrons::core_api as tn;
use tn_fleet::{FleetEntry, FleetRegistry, RiskSource, RiskSurface, SiteParams, SurfaceConfig};
use tn_server::{Server, ServerConfig};

/// The surface tables are byte-identical for any construction thread
/// count: column `j` always draws from substream `fork(j)`, and the
/// workers write results by index.
#[test]
fn surface_is_byte_identical_across_thread_counts() {
    let digest_for = |threads: usize| {
        let config = SurfaceConfig {
            threads,
            ..SurfaceConfig::quick(42)
        };
        RiskSurface::build(config).grid_digest()
    };
    let serial = digest_for(1);
    assert_eq!(serial, digest_for(4), "4 threads diverged from serial");
    assert_eq!(serial, digest_for(8), "8 threads diverged from serial");
}

/// On-grid assessments are pure table reads: the process-wide transport
/// history counter must not advance. Off-grid assessments must fall
/// back to a real Monte-Carlo run, which does advance it.
#[test]
fn surface_hits_run_no_transport_and_fallbacks_do() {
    let surface = RiskSurface::build(SurfaceConfig::quick(7));
    let device = tn::devices::all_compute_devices().remove(0);
    let on_grid = SiteParams {
        altitude_m: 1_609.0,
        rigidity_factor: 1.1,
        b10_areal_cm2: 3e18,
        thermal_scaling: 1.0,
        avf: 0.5,
    };
    let before = tn::transport::stats::histories_total();
    let hit = surface.assess(&device, &on_grid);
    assert_eq!(hit.source, RiskSource::Surface);
    assert_eq!(
        tn::transport::stats::histories_total(),
        before,
        "surface hit must not run the Monte-Carlo kernel"
    );

    let off_grid = SiteParams {
        altitude_m: 8_000.0, // above the 4000 m grid ceiling
        ..on_grid
    };
    let miss = surface.assess(&device, &off_grid);
    assert_eq!(miss.source, RiskSource::MonteCarlo);
    assert!(
        tn::transport::stats::histories_total() > before,
        "off-grid fallback must run the Monte-Carlo kernel"
    );
}

/// Grid-interior lookups agree with a direct evaluation (analytic
/// altitude factors × a dedicated Monte-Carlo transmission run at the
/// exact ¹⁰B value) to 1%. The budget below keeps the Monte-Carlo
/// noise floor well under the tolerance, so the check genuinely bounds
/// the *interpolation* error.
#[test]
fn surface_interpolation_matches_direct_evaluation_to_one_percent() {
    let config = SurfaceConfig {
        alt_nodes: 5,
        log10_b10_min: 17.5,
        log10_b10_max: 19.0,
        b10_nodes: 5,
        histories_per_node: 32_768,
        ..SurfaceConfig::quick(11)
    };
    let surface = RiskSurface::build(config);
    let device = tn::devices::all_compute_devices().remove(0);
    // Mid-cell on both axes, plus one point in the sub-grid [0, N₀)
    // shielding segment.
    for (alt, b10) in [
        (500.0, 1e18),
        (1_750.0, 5.5e18),
        (3_500.0, 8.8e18),
        (1_000.0, 1e17),
    ] {
        let p = SiteParams {
            altitude_m: alt,
            rigidity_factor: 1.0,
            b10_areal_cm2: b10,
            thermal_scaling: 1.0,
            avf: 1.0,
        };
        let assessment = surface.assess(&device, &p);
        assert_eq!(assessment.source, RiskSource::Surface, "({alt}, {b10:e})");
        let (he, th) = surface.fluxes_direct(alt, b10);
        let region = device.response().region(tn::devices::ErrorClass::Sdc);
        let direct = region
            .fast_saturated()
            .fit_in(tn::physics::units::Flux(he))
            .value()
            + region
                .b10_cross_section_at(tn::physics::constants::THERMAL_ENERGY)
                .fit_in(tn::physics::units::Flux(th))
                .value();
        let interpolated = assessment.sdc.total().value();
        let rel = (interpolated - direct).abs() / direct;
        assert!(
            rel <= 0.01,
            "({alt} m, {b10:e} atoms/cm2): surface {interpolated} vs direct {direct} \
             (rel err {rel:.4})"
        );
    }
}

/// One tiny HTTP exchange against a spawned server (the daemon closes
/// each connection after its response, so read-to-EOF is the framing).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// A registry snapshot written with `to_jsonl` survives the trip
/// through `ServerConfig::fleet_path`: the daemon loads it, serves it
/// on the stream endpoint, and a corrupt snapshot is a bind error.
#[test]
fn registry_snapshot_round_trips_through_the_server_config() {
    let mut registry = FleetRegistry::new();
    for (id, device, alt) in [
        ("rack-a", "NVIDIA K20", 10.0),
        ("rack-b", "Intel Xeon Phi", 1_609.0),
        ("rack-c", "NVIDIA TitanX", 3_094.0),
    ] {
        let mut entry = FleetEntry::new(id, device);
        entry.altitude_m = alt;
        registry
            .upsert(entry.validate().expect("valid entry"))
            .expect("upsert");
    }
    let jsonl = registry.to_jsonl();
    let round = FleetRegistry::from_jsonl(&jsonl).expect("snapshot parses back");
    assert_eq!(round.entries(), registry.entries());

    let path = std::env::temp_dir().join("tn_fleet_subsystem_snapshot.jsonl");
    std::fs::write(&path, &jsonl).expect("write snapshot");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        seed: 5,
        transport_threads: 1,
        fleet_path: Some(path.to_string_lossy().to_string()),
        ..ServerConfig::default()
    };
    let handle = Server::bind(&config).expect("bind with snapshot").spawn();
    let response = http_get(handle.addr(), "/v1/fleet/stream?quick=true");
    handle.stop();
    let _ = std::fs::remove_file(&path);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    for id in ["rack-a", "rack-b", "rack-c"] {
        assert!(response.contains(id), "missing {id} in {response}");
    }
    assert!(response.contains("\"count\":3"), "{response}");

    let bad = std::env::temp_dir().join("tn_fleet_subsystem_bad.jsonl");
    std::fs::write(&bad, "{\"id\":\"x\"}\n").expect("write bad snapshot");
    let err = Server::bind(&ServerConfig {
        fleet_path: Some(bad.to_string_lossy().to_string()),
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
    .expect_err("corrupt snapshot must not bind");
    let _ = std::fs::remove_file(&bad);
    assert!(err.to_string().contains("fleet snapshot"), "{err}");
}
