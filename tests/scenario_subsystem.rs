//! End-to-end coverage of the tn-scenario subsystem from the workspace
//! root: the four named built-in campaigns as conformance fixtures,
//! byte-determinism of their reports across repeated runs and transport
//! thread counts, 2oo3 voting tolerance under a faulted channel, and
//! parser round-trip guarantees the CI gate depends on.

use thermal_neutrons::core_api as tn;
use tn_scenario::{
    builtin, builtin_names, run_scenario, ChannelVerdict, Scenario, MAX_ONSET_DELAY,
};

fn quiet() {
    tn::obs::set_level(Some(tn::obs::Level::Error));
}

#[test]
fn all_builtin_campaigns_are_conformant_at_the_paper_seed() {
    quiet();
    for name in builtin_names() {
        let scenario = builtin(name).expect("built-in scenario");
        let report = run_scenario(&scenario, 2020);
        assert!(report.conformant, "{name} must be conformant at seed 2020");
        assert_eq!(report.unmatched_alerts, 0, "{name} raised uncredited alerts");
        for e in &report.events {
            if e.expected {
                assert!(e.detected, "{name}: event at hour {} missed", e.at_hour);
                let delay = e.detection_delay.expect("detected events carry a delay");
                assert!(
                    delay <= MAX_ONSET_DELAY,
                    "{name}: event at hour {} detected after {delay}h",
                    e.at_hour
                );
            }
        }
    }
}

#[test]
fn normal_campaign_stays_quiet_and_healthy() {
    quiet();
    let report = run_scenario(&builtin("normal").expect("built-in"), 2020);
    assert!(report.alerts.is_empty(), "stationary campaign raised alerts");
    assert!(report.moderation_boost.is_none(), "no water pan scripted");
    assert!(report
        .channels
        .iter()
        .all(|c| c.verdict == ChannelVerdict::Healthy && c.flagged_hour.is_none()));
}

#[test]
fn drift_campaign_flags_the_faulted_channel_and_voting_holds_the_rate() {
    quiet();
    let faulted = builtin("detector-channel-drift").expect("built-in");
    let fault = &faulted.faults[0];
    let dirty = run_scenario(&faulted, 2020);
    assert!(dirty.alerts.is_empty(), "voting must keep the monitor quiet");
    let bad = dirty
        .channels
        .iter()
        .find(|c| c.channel == fault.channel)
        .expect("faulted channel present");
    assert_eq!(bad.verdict, ChannelVerdict::Drift);
    assert!(bad.flagged_hour.expect("flagged") >= fault.at_hour);

    let clean = run_scenario(&builtin("normal").expect("built-in"), 2020);
    let ratio = dirty.fused_mean_rate / clean.fused_mean_rate;
    assert!(
        (ratio - 1.0).abs() <= 0.05,
        "2oo3 voting let the fused rate drift: ratio {ratio:.4}"
    );
}

/// One test owns every mutation of the process-wide transport thread
/// default, so concurrently-running tests in this binary never observe
/// a transient value they didn't set. The loss-of-moderation campaign
/// is the sharpest probe: its report embeds a Monte-Carlo-derived
/// moderation boost, so any thread-count dependence in the transport
/// tallies would surface here as a byte diff.
#[test]
fn reports_are_byte_identical_across_runs_and_thread_counts() {
    use tn::transport::{default_threads, set_default_threads};
    quiet();

    let baselines: Vec<(String, String)> = builtin_names()
        .iter()
        .map(|name| {
            let scenario = builtin(name).expect("built-in");
            (name.to_string(), run_scenario(&scenario, 2020).to_json())
        })
        .collect();
    for (name, baseline) in &baselines {
        let again = run_scenario(&builtin(name).expect("built-in"), 2020).to_json();
        assert_eq!(&again, baseline, "{name} report differs across runs");
    }
    let moderated = builtin("loss-of-moderation").expect("built-in");
    let moderated_baseline = &baselines
        .iter()
        .find(|(n, _)| n == "loss-of-moderation")
        .expect("present")
        .1;
    for threads in [4, 8] {
        set_default_threads(threads);
        assert_eq!(default_threads(), threads);
        let report = run_scenario(&moderated, 2020).to_json();
        assert_eq!(
            &report, moderated_baseline,
            "loss-of-moderation report differs at {threads} transport threads"
        );
    }
    set_default_threads(1);
}

#[test]
fn builtin_documents_round_trip_byte_exact_through_the_parser() {
    for name in builtin_names() {
        let scenario = builtin(name).expect("built-in");
        let text = scenario.to_json();
        let reparsed = Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("{name} does not re-parse: {e}"));
        assert_eq!(reparsed, scenario, "{name} round-trip changed the value");
        assert_eq!(reparsed.to_json(), text, "{name} round-trip changed the bytes");
    }
}

#[test]
fn malformed_documents_are_structured_errors_not_panics() {
    for (doc, fragment) in [
        ("", "invalid JSON"),
        ("[]", "$"),
        (r#"{"name":"x?","duration_hours":48}"#, "$.name"),
        (r#"{"name":"x","duration_hours":3}"#, "$.duration_hours"),
        (
            r#"{"name":"x","duration_hours":48,"location":"leadville","events":[{"at_hour":0,"kind":"beam_on"}]}"#,
            "$.events[0]",
        ),
        (
            r#"{"name":"x","duration_hours":48,"location":"leadville","faults":[{"at_hour":4,"channel":9,"kind":"dropout"}]}"#,
            "$.faults[0]",
        ),
    ] {
        let err = Scenario::from_json(doc).expect_err(doc).to_string();
        assert!(err.contains(fragment), "`{doc}` → `{err}`");
    }
}
